package quality

import (
	"ppaassembler/internal/align"
	"ppaassembler/internal/dna"
)

// MisjoinSlack is the reference-distance threshold beyond which a scaffold
// join counts as a misjoin rather than a mis-sized gap (QUAST counts
// relocations at kbp scale similarly).
const MisjoinSlack = 1000

// ScaffoldParts is one scaffold decomposed into its contig parts and the
// N-gap lengths between them (len(Gaps) == len(Contigs)-1).
type ScaffoldParts struct {
	Contigs []dna.Seq
	Gaps    []int
}

// Span returns the scaffold's total length including gaps.
func (s ScaffoldParts) Span() int {
	n := 0
	for _, c := range s.Contigs {
		n += c.Len()
	}
	for _, g := range s.Gaps {
		n += g
	}
	return n
}

// ParseScaffold splits an N-gapped scaffold sequence (as written by the
// assembler's -scaffold output) into parts: maximal N-free stretches become
// contigs, runs of N become gaps.
func ParseScaffold(seq string) ScaffoldParts {
	var p ScaffoldParts
	i := 0
	for i < len(seq) {
		if seq[i] == 'N' || seq[i] == 'n' {
			j := i
			for j < len(seq) && (seq[j] == 'N' || seq[j] == 'n') {
				j++
			}
			if len(p.Contigs) > 0 && j < len(seq) {
				p.Gaps = append(p.Gaps, j-i)
			}
			i = j
			continue
		}
		j := i
		for j < len(seq) && seq[j] != 'N' && seq[j] != 'n' {
			j++
		}
		p.Contigs = append(p.Contigs, dna.ParseSeq(seq[i:j]))
		i = j
	}
	return p
}

// ScaffoldReport is the scaffold-aware metric set: size statistics over
// whole scaffolds (gaps included) plus, with a reference, join correctness
// and gap-size accuracy.
type ScaffoldReport struct {
	NumScaffolds    int
	TotalLength     int // includes gap Ns
	ScaffoldN50     int
	LargestScaffold int
	// MultiContig counts scaffolds joining at least two contigs.
	MultiContig int

	// Reference-based join metrics (zero without a reference).
	HasReference bool
	// Joins counts adjacent contig pairs where both sides aligned; a join
	// is a Misjoin when the two contigs align to different strands, in the
	// wrong order, or more than MisjoinSlack away from the gap estimate.
	Joins, Misjoins int
	// UnalignedContigs counts scaffold members without a dominant
	// reference alignment (their joins are not evaluated).
	UnalignedContigs int
	// Gap accuracy over correct joins: GapsOutOfTolerance counts estimates
	// deviating from the reference distance by more than the tolerance
	// passed to EvaluateScaffolds.
	GapsEvaluated, GapsOutOfTolerance int
	MeanAbsGapError                   float64
}

// contigSpot is a contig's dominant placement on the reference.
type contigSpot struct {
	start, end int
	rc         bool
	ok         bool
}

// EvaluateScaffolds computes scaffold metrics. ref may be the zero Seq for
// reference-free evaluation; scaffolds spanning less than minLen are
// ignored; gapTol is the tolerance (in bases) for counting a gap estimate
// as correct — pass about twice the library's insert-size standard
// deviation.
func EvaluateScaffolds(scaffolds []ScaffoldParts, ref dna.Seq, minLen, gapTol int) ScaffoldReport {
	var r ScaffoldReport
	var kept []ScaffoldParts
	var lens []int
	for _, s := range scaffolds {
		sp := s.Span()
		if sp < minLen {
			continue
		}
		kept = append(kept, s)
		lens = append(lens, sp)
		r.TotalLength += sp
		if sp > r.LargestScaffold {
			r.LargestScaffold = sp
		}
		if len(s.Contigs) > 1 {
			r.MultiContig++
		}
	}
	r.NumScaffolds = len(kept)
	r.ScaffoldN50 = N50(lens)
	if ref.Len() == 0 {
		return r
	}
	r.HasReference = true
	ix := align.NewIndex(ref, align.Options{})
	sumAbsErr := 0.0
	for _, s := range kept {
		spots := make([]contigSpot, len(s.Contigs))
		for i, c := range s.Contigs {
			spots[i] = locate(ix, c)
			if !spots[i].ok {
				r.UnalignedContigs++
			}
		}
		for i := 0; i+1 < len(s.Contigs); i++ {
			a, b := spots[i], spots[i+1]
			if !a.ok || !b.ok {
				continue
			}
			r.Joins++
			est := s.Gaps[i]
			if a.rc != b.rc {
				r.Misjoins++
				continue
			}
			// Scaffold members are already in scaffold orientation, so on
			// the forward strand b follows a; on the reverse strand the
			// reference order is flipped.
			var obs int
			if !a.rc {
				obs = b.start - a.end
			} else {
				obs = a.start - b.end
			}
			err := obs - est
			if err < -MisjoinSlack || err > MisjoinSlack {
				r.Misjoins++
				continue
			}
			r.GapsEvaluated++
			if err < 0 {
				err = -err
			}
			sumAbsErr += float64(err)
			if err > gapTol {
				r.GapsOutOfTolerance++
			}
		}
	}
	if r.GapsEvaluated > 0 {
		r.MeanAbsGapError = sumAbsErr / float64(r.GapsEvaluated)
	}
	return r
}

// locate finds a contig's dominant reference placement: the largest aligned
// block, accepted when it covers at least half the contig.
func locate(ix *align.Index, c dna.Seq) contigSpot {
	res := ix.Align(c)
	var best align.Block
	for _, b := range res.Blocks {
		if b.Len() > best.Len() {
			best = b
		}
	}
	if best.Len()*2 < c.Len() {
		return contigSpot{}
	}
	// Extrapolate the block to the whole contig so distances measure
	// between contig boundaries, not block boundaries.
	if !best.RC {
		return contigSpot{start: best.RStart - best.QStart, end: best.REnd + (c.Len() - best.QEnd), rc: false, ok: true}
	}
	return contigSpot{start: best.RStart - (c.Len() - best.QEnd), end: best.REnd + best.QStart, rc: true, ok: true}
}
