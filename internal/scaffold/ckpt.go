// Checkpoint codec methods: the scaffolding vertex and message types opt
// into the Pregel engine's binary checkpoint format (v2) by implementing
// pregel.CheckpointAppender / pregel.CheckpointDecoder. Contig IDs are
// varint-packed (they are small dense indices, unlike the k-mer codes of
// the segment graph); gaps are float64 bit patterns.

package scaffold

import (
	"fmt"
	"math"

	"ppaassembler/internal/pregel"
)

// AppendCheckpoint implements pregel.CheckpointAppender.
func (l *Link) AppendCheckpoint(buf []byte) []byte {
	buf = pregel.AppendUvarint(buf, uint64(l.Nbr))
	buf = append(buf, byte(l.SelfEnd), byte(l.NbrEnd))
	buf = pregel.AppendVarint(buf, int64(l.Weight))
	return pregel.AppendUint64(buf, math.Float64bits(l.Gap))
}

// DecodeCheckpoint implements pregel.CheckpointDecoder.
func (l *Link) DecodeCheckpoint(data []byte) ([]byte, error) {
	id, data, err := pregel.ConsumeUvarint(data)
	if err != nil {
		return nil, err
	}
	l.Nbr = pregel.VertexID(id)
	if len(data) < 2 {
		return nil, fmt.Errorf("scaffold: corrupt Link encoding: truncated ends")
	}
	l.SelfEnd, l.NbrEnd = End(data[0]), End(data[1])
	data = data[2:]
	w, data, err := pregel.ConsumeVarint(data)
	if err != nil {
		return nil, err
	}
	l.Weight = int32(w)
	bits, data, err := pregel.ConsumeUint64(data)
	if err != nil {
		return nil, err
	}
	l.Gap = math.Float64frombits(bits)
	return data, nil
}

// AppendCheckpoint implements pregel.CheckpointAppender.
func (v *SVertex) AppendCheckpoint(buf []byte) []byte {
	buf = pregel.AppendVarint(buf, int64(v.Len))
	buf = pregel.AppendUvarint(buf, uint64(len(v.Cand)))
	for i := range v.Cand {
		buf = v.Cand[i].AppendCheckpoint(buf)
	}
	for i := 0; i < 2; i++ {
		buf = v.Keep[i].AppendCheckpoint(buf)
		buf = pregel.AppendBool(buf, v.Has[i])
	}
	buf = pregel.AppendUvarint(buf, uint64(v.Chain))
	buf = pregel.AppendBool(buf, v.Assigned)
	buf = pregel.AppendBool(buf, v.Flip)
	buf = pregel.AppendUvarint(buf, uint64(v.Wave))
	buf = pregel.AppendUvarint(buf, uint64(v.Pred))
	buf = pregel.AppendUint64(buf, math.Float64bits(v.PredGap))
	return pregel.AppendVarint(buf, v.EndSum)
}

// DecodeCheckpoint implements pregel.CheckpointDecoder.
func (v *SVertex) DecodeCheckpoint(data []byte) ([]byte, error) {
	n, data, err := pregel.ConsumeVarint(data)
	if err != nil {
		return nil, err
	}
	v.Len = int32(n)
	nc, data, err := pregel.ConsumeUvarint(data)
	if err != nil {
		return nil, err
	}
	if uint64(len(data)) < nc {
		return nil, fmt.Errorf("scaffold: corrupt SVertex encoding: %d links in %d bytes", nc, len(data))
	}
	v.Cand = nil
	if nc > 0 {
		v.Cand = make([]Link, nc)
	}
	for i := range v.Cand {
		if data, err = v.Cand[i].DecodeCheckpoint(data); err != nil {
			return nil, err
		}
	}
	for i := 0; i < 2; i++ {
		if data, err = v.Keep[i].DecodeCheckpoint(data); err != nil {
			return nil, err
		}
		if v.Has[i], data, err = pregel.ConsumeBool(data); err != nil {
			return nil, err
		}
	}
	id, data, err := pregel.ConsumeUvarint(data)
	if err != nil {
		return nil, err
	}
	v.Chain = pregel.VertexID(id)
	if v.Assigned, data, err = pregel.ConsumeBool(data); err != nil {
		return nil, err
	}
	if v.Flip, data, err = pregel.ConsumeBool(data); err != nil {
		return nil, err
	}
	if id, data, err = pregel.ConsumeUvarint(data); err != nil {
		return nil, err
	}
	v.Wave = pregel.VertexID(id)
	if id, data, err = pregel.ConsumeUvarint(data); err != nil {
		return nil, err
	}
	v.Pred = pregel.VertexID(id)
	bits, data, err := pregel.ConsumeUint64(data)
	if err != nil {
		return nil, err
	}
	v.PredGap = math.Float64frombits(bits)
	if v.EndSum, data, err = pregel.ConsumeVarint(data); err != nil {
		return nil, err
	}
	return data, nil
}

// AppendCheckpoint implements pregel.CheckpointAppender.
func (m *SMsg) AppendCheckpoint(buf []byte) []byte {
	buf = append(buf, m.Kind, byte(m.FromEnd), byte(m.ToEnd))
	buf = pregel.AppendUvarint(buf, uint64(m.From))
	buf = pregel.AppendUvarint(buf, uint64(m.Wave))
	return pregel.AppendUint64(buf, math.Float64bits(m.Gap))
}

// DecodeCheckpoint implements pregel.CheckpointDecoder.
func (m *SMsg) DecodeCheckpoint(data []byte) ([]byte, error) {
	if len(data) < 3 {
		return nil, fmt.Errorf("scaffold: corrupt SMsg encoding: truncated header")
	}
	m.Kind, m.FromEnd, m.ToEnd = data[0], End(data[1]), End(data[2])
	id, data, err := pregel.ConsumeUvarint(data[3:])
	if err != nil {
		return nil, err
	}
	m.From = pregel.VertexID(id)
	if id, data, err = pregel.ConsumeUvarint(data); err != nil {
		return nil, err
	}
	m.Wave = pregel.VertexID(id)
	bits, data, err := pregel.ConsumeUint64(data)
	if err != nil {
		return nil, err
	}
	m.Gap = math.Float64frombits(bits)
	return data, nil
}
