package scaffold

import (
	"strings"
	"testing"

	"ppaassembler/internal/dna"
	"ppaassembler/internal/genome"
	"ppaassembler/internal/pregel"
	"ppaassembler/internal/readsim"
)

func testGenome(t *testing.T, n int, seed int64) dna.Seq {
	t.Helper()
	g, err := genome.Generate(genome.Spec{Name: "t", Length: n, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func simPairs(t *testing.T, ref dna.Seq, readLen int, cov, mean, sd float64, seed int64) []Pair {
	t.Helper()
	sim, err := readsim.SimulatePairs(ref, readsim.PairProfile{
		Profile:    readsim.Profile{ReadLen: readLen, Coverage: cov, Seed: seed},
		InsertMean: mean, InsertSD: sd,
	})
	if err != nil {
		t.Fatal(err)
	}
	pairs := make([]Pair, len(sim))
	for i, p := range sim {
		pairs[i] = Pair{R1: p.R1, R2: p.R2}
	}
	return pairs
}

func TestPairUp(t *testing.T) {
	pairs, err := PairUp([]string{"AA", "CC", "GG", "TT"})
	if err != nil || len(pairs) != 2 || pairs[0].R2 != "CC" || pairs[1].R1 != "GG" {
		t.Fatalf("pairs = %v, err = %v", pairs, err)
	}
	if _, err := PairUp([]string{"AA", "CC", "GG"}); err == nil {
		t.Error("odd read count accepted")
	}
}

func TestPlaceMate(t *testing.T) {
	ref := testGenome(t, 2000, 11)
	contigs := FromSeqs([]dna.Seq{ref})
	ix := buildIndex(contigs, []bool{true}, 21, pregel.NewSimClock(pregel.CostModel{}))

	fwd := ref.Slice(300, 380).String()
	p, ok := ix.place(fwd)
	if !ok || !p.fwd || p.pos != 300 || p.contig != 0 {
		t.Errorf("forward placement = %+v ok=%v, want pos 300 fwd", p, ok)
	}
	rev := ref.Slice(500, 580).ReverseComplement().String()
	p, ok = ix.place(rev)
	if !ok || p.fwd || p.pos != 500 {
		t.Errorf("reverse placement = %+v ok=%v, want pos 500 rev", p, ok)
	}
	// A read with one error still places by majority vote.
	mut := []byte(fwd)
	mut[40] = "ACGT"[(strings.IndexByte("ACGT", mut[40])+1)%4]
	p, ok = ix.place(string(mut))
	if !ok || p.pos != 300 {
		t.Errorf("mutated placement = %+v ok=%v", p, ok)
	}
	if _, ok := ix.place("ACGTACGTACGT"); ok {
		t.Error("read shorter than the seed placed")
	}
}

func TestPlaceMateRepeatAmbiguity(t *testing.T) {
	ref := testGenome(t, 1000, 12)
	// Two contigs sharing an identical 200 bp block.
	block := ref.Slice(100, 300)
	c1 := ref.Slice(0, 500)
	c2 := ref.Slice(500, 800).Concat(block)
	contigs := FromSeqs([]dna.Seq{c1, c2})
	ix := buildIndex(contigs, []bool{true, true}, 21, pregel.NewSimClock(pregel.CostModel{}))
	if _, ok := ix.place(block.Slice(50, 150).String()); ok {
		t.Error("read from a two-copy repeat placed uniquely")
	}
	if p, ok := ix.place(ref.Slice(350, 450).String()); !ok || p.contig != 0 {
		t.Errorf("unique read misplaced: %+v ok=%v", p, ok)
	}
}

func TestEndpointGeometry(t *testing.T) {
	if e, d := endpoint(placement{pos: 100, fwd: true}, 80, 500); e != R || d != 400 {
		t.Errorf("forward endpoint = %v %d, want R 400", e, d)
	}
	if e, d := endpoint(placement{pos: 100, fwd: false}, 80, 500); e != L || d != 180 {
		t.Errorf("reverse endpoint = %v %d, want L 180", e, d)
	}
}

// TestBuildJoinsTwoContigs is the subsystem's core scenario: two contigs cut
// from one genome with a 200 bp gap must be joined forward-forward, in
// order, with a gap estimate near 200, using an insert size estimated from
// the data.
func TestBuildJoinsTwoContigs(t *testing.T) {
	ref := testGenome(t, 6000, 21)
	contigs := FromSeqs([]dna.Seq{ref.Slice(0, 2500), ref.Slice(2700, 5500)})
	pairs := simPairs(t, ref, 80, 20, 600, 60, 22)

	res, err := Build(contigs, pairs, Options{
		Workers: 3, SeedLen: 21, MinContigLen: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scaffolds) != 1 {
		t.Fatalf("scaffolds = %d, want 1 (%+v)", len(res.Scaffolds), res.Scaffolds)
	}
	s := res.Scaffolds[0]
	if s.Len() != 2 || s.Contigs[0] != 0 || s.Contigs[1] != 1 {
		t.Fatalf("scaffold members = %v", s.Contigs)
	}
	if s.Flip[0] || s.Flip[1] {
		t.Errorf("flips = %v, want forward-forward", s.Flip)
	}
	if g := s.Gaps[0]; g < 200-120 || g > 200+120 {
		t.Errorf("gap = %d, want 200 +- 2 s.d.", g)
	}
	if res.InsertMean < 560 || res.InsertMean > 640 {
		t.Errorf("estimated insert mean = %.1f, want ~600", res.InsertMean)
	}
	if s.Starts[0] != 0 || s.Starts[1] != 2500+s.Gaps[0] {
		t.Errorf("starts = %v with gap %d", s.Starts, s.Gaps[0])
	}
	if res.Stats.Supersteps == 0 || res.Stats.Messages == 0 {
		t.Errorf("scaffolding charged no supersteps/messages: %+v", res.Stats)
	}
	if res.SimSeconds <= 0 {
		t.Error("no simulated time charged")
	}
	if res.LinksKept != 1 {
		t.Errorf("links kept = %d, want 1", res.LinksKept)
	}
}

// TestBuildOrientsFlippedContig stores the second contig reverse-complemented
// and expects the scaffolder to flip it back.
func TestBuildOrientsFlippedContig(t *testing.T) {
	ref := testGenome(t, 6000, 31)
	left := ref.Slice(0, 2500)
	right := ref.Slice(2700, 5500)
	contigs := FromSeqs([]dna.Seq{left, right.ReverseComplement()})
	pairs := simPairs(t, ref, 80, 20, 600, 60, 32)

	res, err := Build(contigs, pairs, Options{
		Workers: 2, SeedLen: 21, MinContigLen: 100, InsertMean: 600, InsertSD: 60,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scaffolds) != 1 || res.Scaffolds[0].Len() != 2 {
		t.Fatalf("scaffolds = %+v", res.Scaffolds)
	}
	s := res.Scaffolds[0]
	if s.Flip[0] != false || s.Flip[1] != true {
		t.Fatalf("flips = %v, want [false true]", s.Flip)
	}
	recs := Records(contigs, res.Scaffolds)
	if len(recs) != 1 {
		t.Fatalf("records = %d", len(recs))
	}
	if !strings.HasPrefix(recs[0].Seq, left.String()) {
		t.Error("rendered scaffold does not start with the left contig")
	}
	if !strings.HasSuffix(recs[0].Seq, right.String()) {
		t.Error("rendered scaffold does not end with the re-oriented right contig")
	}
	if !strings.Contains(recs[0].Seq, "N") {
		t.Error("rendered scaffold has no gap Ns")
	}
}

// TestBuildThreeContigChain checks ordering and list-ranked coordinates over
// a longer chain, with deterministic repeated runs.
func TestBuildThreeContigChain(t *testing.T) {
	ref := testGenome(t, 9000, 41)
	cuts := [][2]int{{0, 2400}, {2600, 5200}, {5400, 8600}}
	var seqs []dna.Seq
	for _, c := range cuts {
		seqs = append(seqs, ref.Slice(c[0], c[1]))
	}
	pairs := simPairs(t, ref, 80, 25, 600, 50, 42)

	var prev *Result
	for i := 0; i < 2; i++ {
		res, err := Build(FromSeqs(seqs), pairs, Options{
			Workers: 4, SeedLen: 21, MinContigLen: 100, InsertMean: 600, InsertSD: 50,
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Scaffolds) != 1 {
			t.Fatalf("scaffolds = %d, want 1", len(res.Scaffolds))
		}
		s := res.Scaffolds[0]
		if s.Len() != 3 || s.Contigs[0] != 0 || s.Contigs[1] != 1 || s.Contigs[2] != 2 {
			t.Fatalf("chain = %v", s.Contigs)
		}
		for j := 1; j < 3; j++ {
			wantStart := s.Starts[j-1] + seqs[s.Contigs[j-1]].Len() + s.Gaps[j-1]
			if s.Starts[j] != wantStart {
				t.Errorf("start[%d] = %d, want %d (list ranking inconsistent with chain walk)", j, s.Starts[j], wantStart)
			}
		}
		if prev != nil {
			a, b := prev.Scaffolds[0], s
			for j := range a.Contigs {
				if a.Contigs[j] != b.Contigs[j] || a.Flip[j] != b.Flip[j] || a.Starts[j] != b.Starts[j] {
					t.Fatal("scaffolding is not deterministic across runs")
				}
			}
		}
		prev = res
	}
}

// TestBuildExcludesShortRepeatContig reproduces the repeat situation: a
// collapsed repeat contig sits between two flanks in two genomic copies.
// The short repeat contig must be excluded, and the flanks joined across it
// with a gap close to the repeat length.
func TestBuildExcludesShortRepeatContig(t *testing.T) {
	base := testGenome(t, 8200, 51)
	rep := testGenome(t, 300, 52)
	// Genome: f0 (2000) + rep + f1 (2500) + rep + f2 (2500).
	var b dna.Builder
	f0, f1, f2 := base.Slice(0, 2000), base.Slice(2000, 4500), base.Slice(4500, 7000)
	for _, s := range []dna.Seq{f0, rep, f1, rep, f2} {
		b.AppendSeq(s)
	}
	ref := b.Seq()
	contigs := FromSeqs([]dna.Seq{f0, f1, f2, rep})
	pairs := simPairs(t, ref, 80, 25, 700, 60, 53)

	res, err := Build(contigs, pairs, Options{
		Workers: 3, SeedLen: 21, MinContigLen: 500, InsertMean: 700, InsertSD: 60,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Excluded != 1 {
		t.Errorf("excluded = %d, want 1 (the repeat contig)", res.Excluded)
	}
	var chain *Scaffold
	for i := range res.Scaffolds {
		if res.Scaffolds[i].Len() > 1 {
			if chain != nil {
				t.Fatalf("multiple multi-contig scaffolds: %+v", res.Scaffolds)
			}
			chain = &res.Scaffolds[i]
		}
	}
	if chain == nil {
		t.Fatalf("no multi-contig scaffold built: %+v", res.Scaffolds)
	}
	if chain.Len() != 3 || chain.Contigs[0] != 0 || chain.Contigs[1] != 1 || chain.Contigs[2] != 2 {
		t.Fatalf("chain = %v, want [0 1 2]", chain.Contigs)
	}
	for _, g := range chain.Gaps {
		if g < 300-120 || g > 300+120 {
			t.Errorf("gap = %d, want 300 +- 2 s.d.", g)
		}
	}
}

func TestFilterLinksAmbiguityHandshake(t *testing.T) {
	cfg := pregel.Config{Workers: 2}
	clock := pregel.NewSimClock(pregel.CostModel{})
	g := pregel.NewGraph[SVertex, SMsg](cfg)
	g.UseClock(clock)
	// Vertex 1's L end attracts two strong links (from 2 and 3); 2 and 3
	// each see only their own link. Everything must be dropped. Vertices 4-5
	// share a single reciprocal link and must keep it; the weak 4-6 link is
	// below MinSupport and must not interfere.
	g.AddVertex(1, SVertex{Len: 100, Cand: []Link{
		{Nbr: 2, SelfEnd: L, NbrEnd: R, Weight: 5},
		{Nbr: 3, SelfEnd: L, NbrEnd: R, Weight: 5},
	}})
	g.AddVertex(2, SVertex{Len: 100, Cand: []Link{{Nbr: 1, SelfEnd: R, NbrEnd: L, Weight: 5}}})
	g.AddVertex(3, SVertex{Len: 100, Cand: []Link{{Nbr: 1, SelfEnd: R, NbrEnd: L, Weight: 5}}})
	g.AddVertex(4, SVertex{Len: 100, Cand: []Link{
		{Nbr: 5, SelfEnd: R, NbrEnd: L, Weight: 7},
		{Nbr: 6, SelfEnd: R, NbrEnd: L, Weight: 2},
	}})
	g.AddVertex(5, SVertex{Len: 100, Cand: []Link{{Nbr: 4, SelfEnd: L, NbrEnd: R, Weight: 7}}})
	g.AddVertex(6, SVertex{Len: 100, Cand: nil})
	if _, err := filterLinks(g, 3); err != nil {
		t.Fatal(err)
	}
	want := map[pregel.VertexID][2]bool{
		1: {false, false}, 2: {false, false}, 3: {false, false},
		4: {false, true}, 5: {true, false}, 6: {false, false},
	}
	g.ForEach(func(id pregel.VertexID, v *SVertex) {
		if v.Has != want[id] {
			t.Errorf("vertex %d kept = %v, want %v", id, v.Has, want[id])
		}
	})
}

func TestCyclicChainFallsBackToSingletons(t *testing.T) {
	cfg := pregel.Config{Workers: 2}
	clock := pregel.NewSimClock(pregel.CostModel{})
	g := pregel.NewGraph[SVertex, SMsg](cfg)
	g.UseClock(clock)
	// A 3-cycle of kept links (as if filtering had kept them all).
	ids := []pregel.VertexID{1, 2, 3}
	for i, id := range ids {
		next := ids[(i+1)%3]
		prev := ids[(i+2)%3]
		v := SVertex{Len: 100}
		v.Keep[R] = Link{Nbr: next, SelfEnd: R, NbrEnd: L, Weight: 5}
		v.Keep[L] = Link{Nbr: prev, SelfEnd: L, NbrEnd: R, Weight: 5}
		v.Has = [2]bool{true, true}
		g.AddVertex(id, v)
	}
	if _, err := chainLabel(g, cfg, clock); err != nil {
		t.Fatal(err)
	}
	if _, err := orderChains(g); err != nil {
		t.Fatal(err)
	}
	if _, err := rankOffsets(g, cfg, clock); err != nil {
		t.Fatal(err)
	}
	contigs := []Contig{{ID: 1, Seq: dna.ParseSeq("ACGT")}, {ID: 2, Seq: dna.ParseSeq("ACGT")}, {ID: 3, Seq: dna.ParseSeq("ACGT")}}
	res := &Result{Stats: &pregel.Stats{}}
	if err := collect(g, contigs, []bool{true, true, true}, res); err != nil {
		t.Fatal(err)
	}
	if res.CycleContigs != 3 || len(res.Scaffolds) != 3 {
		t.Errorf("cycle contigs = %d, scaffolds = %d, want 3 singletons", res.CycleContigs, len(res.Scaffolds))
	}
}

func TestBuildRejectsBadInput(t *testing.T) {
	contigs := []Contig{{ID: 1, Seq: dna.ParseSeq("ACGTACGT")}, {ID: 1, Seq: dna.ParseSeq("TTTTAAAA")}}
	if _, err := Build(contigs, nil, Options{}); err == nil {
		t.Error("duplicate contig IDs accepted")
	}
	if _, err := Build(FromSeqs([]dna.Seq{dna.ParseSeq("ACGT")}), nil, Options{SeedLen: 33}); err == nil {
		t.Error("oversized seed accepted")
	}
	// No pairs and no insert mean: nothing to estimate from.
	if _, err := Build(FromSeqs([]dna.Seq{testGenome(t, 1000, 61)}), nil, Options{MinContigLen: 100}); err == nil {
		t.Error("missing insert size accepted")
	}
}
