package scaffold

import (
	"math"

	"ppaassembler/internal/pregel"
)

// linkKey identifies one oriented contig join: end EA of contig A meets end
// EB of contig B, canonicalized so A < B and both observation directions of
// a pair bundle under one key. A == B (with EA == EB == L) instead carries a
// same-contig insert-size observation.
type linkKey struct {
	A, B   pregel.VertexID
	EA, EB End
}

func (k linkKey) isInsertSample() bool { return k.A == k.B }

func linkKeyHash(k linkKey) uint64 {
	h := uint64(k.A)*0x9E3779B97F4A7C15 ^ uint64(k.B)
	h ^= uint64(k.EA)<<1 | uint64(k.EB)
	return pregel.Uint64Hash(h)
}

func linkKeyLess(a, b linkKey) bool {
	if a.A != b.A {
		return a.A < b.A
	}
	if a.B != b.B {
		return a.B < b.B
	}
	if a.EA != b.EA {
		return a.EA < b.EA
	}
	return a.EB < b.EB
}

// linkBundle is one reduced link: every pair observation of one oriented
// join. span records, per pair, the summed distances of the two mates to
// their joined contig ends; the gap estimate for the join is
// insertMean - mean(span).
type linkBundle struct {
	key        linkKey
	n          int32
	sum, sumSq float64
}

// sampleStats accumulates same-contig insert observations.
type sampleStats struct {
	n          int64
	sum, sumSq float64
}

func (s *sampleStats) add(n int64, sum, sumSq float64) {
	s.n += n
	s.sum += sum
	s.sumSq += sumSq
}

func (s *sampleStats) mean() float64 { return s.sum / float64(s.n) }

func (s *sampleStats) sd() float64 {
	m := s.mean()
	return math.Sqrt(math.Max(0, s.sumSq/float64(s.n)-m*m))
}

// bundleLinks is the mapping-and-link-building mini-MapReduce: map places
// both mates of each pair and emits either a link observation (mates on two
// contigs) or an insert-size sample (mates properly oriented on one contig);
// reduce bundles observations per oriented join. Mappers run concurrently
// under opt.Parallel, so the pair counters accumulate per map worker and
// fold into res after the shuffle.
func bundleLinks(ix *contigIndex, pairs []Pair, opt Options, clock *pregel.SimClock, res *Result) ([]linkBundle, sampleStats, *pregel.Stats) {
	shards := pregel.ShardSlice(pairs, opt.Workers)
	type pairCounts struct{ placed, sameContig, linking int }
	counts := make([]pairCounts, opt.Workers)
	out, st := pregel.MapReduceCfg(
		clock, pregel.MRConfig{
			Workers: opt.Workers, PairBytes: 24, Parallel: opt.Parallel, Faults: opt.Faults,
			Name: opt.JobPrefix + "links", Tracer: opt.Tracer, Metrics: opt.Metrics,
		},
		shards, // 24 ≈ key + span on the wire
		func(w int, p Pair, emit func(linkKey, float64)) {
			p1, ok1 := ix.place(p.R1)
			p2, ok2 := ix.place(p.R2)
			if !ok1 || !ok2 {
				return
			}
			counts[w].placed++
			c1, c2 := &ix.contigs[p1.contig], &ix.contigs[p2.contig]
			if p1.contig == p2.contig {
				// Same contig: a properly oriented (FR) pair measures the
				// insert directly — from the forward mate's start to the
				// reverse mate's end.
				if p1.fwd == p2.fwd {
					return // anomalous orientation
				}
				fwd, rev, revLen := p1, p2, len(p.R2)
				if p2.fwd {
					fwd, rev, revLen = p2, p1, len(p.R1)
				}
				ins := int(rev.pos) + revLen - int(fwd.pos)
				if ins <= 0 {
					return // everted pair
				}
				counts[w].sameContig++
				emit(linkKey{A: c1.ID, B: c1.ID, EA: L, EB: L}, float64(ins))
				return
			}
			e1, d1 := endpoint(p1, len(p.R1), c1.Seq.Len())
			e2, d2 := endpoint(p2, len(p.R2), c2.Seq.Len())
			key := linkKey{A: c1.ID, EA: e1, B: c2.ID, EB: e2}
			if key.B < key.A {
				key = linkKey{A: key.B, EA: key.EB, B: key.A, EB: key.EA}
			}
			counts[w].linking++
			emit(key, float64(d1+d2))
		},
		linkKeyHash,
		linkKeyLess,
		func(w int, key linkKey, spans []float64, emit func(linkBundle)) {
			b := linkBundle{key: key, n: int32(len(spans))}
			for _, s := range spans {
				b.sum += s
				b.sumSq += s * s
			}
			emit(b)
		},
	)
	st.Name = "scaffold-links-mr"
	for _, c := range counts {
		res.PairsPlaced += c.placed
		res.PairsSameContig += c.sameContig
		res.PairsLinking += c.linking
	}

	var links []linkBundle
	var inserts sampleStats
	for _, shard := range out {
		for _, b := range shard {
			if b.key.isInsertSample() {
				inserts.add(int64(b.n), b.sum, b.sumSq)
				continue
			}
			links = append(links, b)
		}
	}
	return links, inserts, st
}

// buildLinkGraph creates the contig-link Pregel graph: one vertex per
// included contig, with the bundled links attached to both endpoint vertices
// as filter-job candidates.
func buildLinkGraph(contigs []Contig, included []bool, links []linkBundle, insertMean float64, cfg pregel.Config, clock *pregel.SimClock) *pregel.Graph[SVertex, SMsg] {
	g := pregel.NewGraph[SVertex, SMsg](cfg)
	g.UseClock(clock)
	cand := map[pregel.VertexID][]Link{}
	for _, b := range links {
		gap := insertMean - b.sum/float64(b.n)
		cand[b.key.A] = append(cand[b.key.A], Link{
			Nbr: b.key.B, SelfEnd: b.key.EA, NbrEnd: b.key.EB, Weight: b.n, Gap: gap,
		})
		cand[b.key.B] = append(cand[b.key.B], Link{
			Nbr: b.key.A, SelfEnd: b.key.EB, NbrEnd: b.key.EA, Weight: b.n, Gap: gap,
		})
	}
	for i, c := range contigs {
		if included[i] {
			g.AddVertex(c.ID, SVertex{Len: int32(c.Seq.Len()), Cand: cand[c.ID]})
		}
	}
	return g
}
