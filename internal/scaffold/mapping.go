package scaffold

import (
	"time"

	"ppaassembler/internal/dna"
	"ppaassembler/internal/pregel"
)

// seedPos locates one seed occurrence on a contig's forward strand.
type seedPos struct {
	contig int32 // index into the Build contig slice
	pos    int32
}

// contigIndex is an exact-match k-mer index over the forward strands of the
// included contigs. In a real deployment every worker holds a replica (the
// contig set is orders of magnitude smaller than the read set), so building
// it is charged to the simulated clock as serial time.
type contigIndex struct {
	s       int
	contigs []Contig
	seeds   map[uint64][]seedPos
}

func buildIndex(contigs []Contig, included []bool, s int, clock *pregel.SimClock) *contigIndex {
	start := time.Now()
	ix := &contigIndex{s: s, contigs: contigs, seeds: make(map[uint64][]seedPos)}
	mask := dna.KmerMask(s)
	for ci, c := range contigs {
		if !included[ci] || c.Seq.Len() < s {
			continue
		}
		var v uint64
		for p := 0; p < c.Seq.Len(); p++ {
			v = (v<<2 | uint64(c.Seq.At(p))) & mask
			if p >= s-1 {
				ix.seeds[v] = append(ix.seeds[v], seedPos{int32(ci), int32(p - s + 1)})
			}
		}
	}
	clock.ChargeSerial(float64(time.Since(start).Nanoseconds()))
	return ix
}

// placement is one mate placed on a contig: pos is the inferred position of
// the read's leftmost base on the contig's forward strand (possibly negative
// or past the end when the read overhangs the contig), fwd its strand.
type placement struct {
	contig int32
	pos    int32
	fwd    bool
}

// place maps one read by seed voting: every error-free length-s window votes
// for the (contig, strand, offset) locus it implies, and the read is placed
// at the locus with strictly the most votes. Ties mean a repeat-ambiguous
// placement and leave the read unplaced, exactly as read mappers discard
// multi-mapping mates before scaffolding.
func (ix *contigIndex) place(read string) (placement, bool) {
	s := ix.s
	rl := len(read)
	if rl < s {
		return placement{}, false
	}
	type locus struct {
		contig int32
		pos    int32
		fwd    bool
	}
	votes := map[locus]int32{}
	mask := dna.KmerMask(s)
	var fv, rv uint64
	run := 0
	for i := 0; i < rl; i++ {
		b, ok := dna.BaseFromByte(read[i])
		if !ok {
			run = 0
			continue
		}
		fv = (fv<<2 | uint64(b)) & mask
		rv = rv>>2 | uint64(b.Complement())<<(2*uint(s-1))
		if run++; run < s {
			continue
		}
		o := int32(i - s + 1) // window offset within the read
		for _, sp := range ix.seeds[fv] {
			votes[locus{sp.contig, sp.pos - o, true}]++
		}
		// A reverse-strand read R satisfies R == RC(contig[q : q+rl]); its
		// window at offset o appears reverse-complemented on the contig at
		// position q + rl - s - o.
		for _, sp := range ix.seeds[rv] {
			votes[locus{sp.contig, sp.pos - (int32(rl) - int32(s) - o), false}]++
		}
	}
	var maxV int32
	for _, v := range votes {
		if v > maxV {
			maxV = v
		}
	}
	if maxV == 0 {
		return placement{}, false
	}
	var best locus
	n := 0
	for l, v := range votes {
		if v == maxV {
			best = l
			n++
		}
	}
	if n != 1 {
		return placement{}, false
	}
	return placement{contig: best.contig, pos: best.pos, fwd: best.fwd}, true
}

// endpoint converts a mate placement into the contig end the mate's partner
// lies beyond, plus the distance from the mate's 5' base to that end. A
// forward mate reads rightward, so the fragment continues past end R; a
// reverse mate reads leftward toward end L.
func endpoint(p placement, readLen, contigLen int) (End, int) {
	if p.fwd {
		return R, contigLen - int(p.pos)
	}
	return L, int(p.pos) + readLen
}
