package scaffold

import (
	"math"

	"ppaassembler/internal/ppa"
	"ppaassembler/internal/pregel"
)

// noPred marks a chain head (same sentinel as the list-ranking BPPA).
const noPred = ppa.NullID

// Link is one bundled candidate join attached to a contig-link vertex: this
// vertex's SelfEnd meets NbrEnd of contig Nbr, supported by Weight pairs,
// with an estimated gap of Gap bases between the two ends.
type Link struct {
	Nbr     pregel.VertexID
	SelfEnd End
	NbrEnd  End
	Weight  int32
	Gap     float64
}

// SVertex is one contig in the contig-link graph, carrying the vertex state
// of all four scaffolding jobs: candidate links (filter job input), the
// surviving link per end, the S-V chain label, and the orientation /
// predecessor / coordinate assignment of the ordering jobs.
type SVertex struct {
	Len  int32
	Cand []Link

	// Keep/Has hold the post-filter link of each end (indexed by End).
	Keep [2]Link
	Has  [2]bool

	// Chain is the scaffold-chain label (minimum contig ID in the chain).
	Chain pregel.VertexID

	// Ordering-wave state: Assigned vertices know their orientation (Flip),
	// upstream neighbor (Pred, noPred at the head), the estimated gap to it
	// (PredGap), and the wave that assigned them (Wave, the head's ID —
	// waves from smaller heads win so both endpoints racing along a chain
	// agree).
	Assigned bool
	Flip     bool
	Wave     pregel.VertexID
	Pred     pregel.VertexID
	PredGap  float64

	// EndSum is the scaffold end-coordinate of this contig computed by the
	// list-ranking job: the sum of (gap + length) from the chain head.
	EndSum int64
}

// SMsg is the message type of the filter and ordering jobs.
type SMsg struct {
	Kind    uint8
	From    pregel.VertexID
	FromEnd End
	ToEnd   End
	Wave    pregel.VertexID
	Gap     float64
}

// Message kinds.
const (
	msgPropose uint8 = iota
	msgWave
)

// filterLinks is the ambiguity-filter job, a two-superstep handshake.
// Superstep 0: every vertex keeps, per end, the end's candidate link iff it
// is the only one with Weight >= minSupport, and proposes it to the
// neighbor. Superstep 1: a kept link survives only when the neighbor
// proposed the reciprocal link — so a repeat contig whose end attracts two
// strong candidates not only keeps nothing itself but also forces both
// neighbors to drop their half of the join.
func filterLinks(g *pregel.Graph[SVertex, SMsg], minSupport int32) (*pregel.Stats, error) {
	return g.Run(func(ctx *pregel.Context[SMsg], id pregel.VertexID, v *SVertex, msgs []SMsg) {
		switch ctx.Superstep() {
		case 0:
			sent := false
			for ei := range v.Keep {
				e := End(ei)
				n := 0
				var pick Link
				for _, l := range v.Cand {
					if l.SelfEnd == e && l.Weight >= minSupport {
						n++
						pick = l
					}
				}
				if n == 1 {
					v.Keep[e], v.Has[e] = pick, true
					ctx.Send(pick.Nbr, SMsg{Kind: msgPropose, From: id, FromEnd: e, ToEnd: pick.NbrEnd})
					sent = true
				}
			}
			v.Cand = nil
			if !sent {
				ctx.VoteToHalt()
			}
		default:
			var confirmed [2]bool
			for _, m := range msgs {
				if m.Kind != msgPropose {
					continue
				}
				e := m.ToEnd
				if v.Has[e] && v.Keep[e].Nbr == m.From && v.Keep[e].NbrEnd == m.FromEnd {
					confirmed[e] = true
				}
			}
			for ei := range v.Has {
				if v.Has[ei] && !confirmed[ei] {
					v.Has[ei] = false
					v.Keep[ei] = Link{}
				}
			}
			ctx.VoteToHalt()
		}
	}, pregel.WithName("scaffold-filter"))
}

// chainLabel labels every contig with the minimum contig ID of its scaffold
// chain by running the simplified Shiloach–Vishkin PPA (package ppa, Figure
// 2 of the paper) over the filtered link graph, on the shared clock.
func chainLabel(g *pregel.Graph[SVertex, SMsg], cfg pregel.Config, clock *pregel.SimClock) (*pregel.Stats, error) {
	var edges [][2]pregel.VertexID
	var all []pregel.VertexID
	g.ForEach(func(id pregel.VertexID, v *SVertex) {
		all = append(all, id)
		for ei := range v.Has {
			if v.Has[ei] && id < v.Keep[ei].Nbr {
				edges = append(edges, [2]pregel.VertexID{id, v.Keep[ei].Nbr})
			}
		}
	})
	svg := ppa.BuildUndirected(cfg, edges, all)
	svg.UseClock(clock)
	st, err := ppa.SVComponents(svg)
	if err != nil {
		return st, err
	}
	st.Name = "scaffold-chains-sv"
	g.ForEach(func(id pregel.VertexID, v *SVertex) {
		if sv, ok := svg.Value(id); ok {
			v.Chain = sv.D
		}
	})
	return st, nil
}

// orderChains assigns orientations and predecessor links by propagating
// waves inward from chain endpoints. Both endpoints of a chain start a wave
// carrying their own ID; every vertex adopts the smaller wave it has seen
// (overwriting the larger), flips itself when the wave enters through its R
// end, records the sender as predecessor, and forwards the wave through its
// other end. When the waves die out, every vertex of a non-cyclic chain is
// oriented away from the chain's smaller endpoint. Cyclic chains have no
// endpoint, receive no wave, and stay unassigned — the caller emits their
// contigs as singletons.
func orderChains(g *pregel.Graph[SVertex, SMsg]) (*pregel.Stats, error) {
	return g.Run(func(ctx *pregel.Context[SMsg], id pregel.VertexID, v *SVertex, msgs []SMsg) {
		if ctx.Superstep() == 0 {
			v.Wave = noPred
			v.Pred = noPred
			nl := 0
			for ei := range v.Has {
				if v.Has[ei] {
					nl++
				}
			}
			switch nl {
			case 0: // singleton scaffold
				v.Assigned, v.Wave = true, id
			case 1: // chain endpoint: start a wave, oriented so the link faces right
				e := L
				if v.Has[R] {
					e = R
				}
				l := v.Keep[e]
				v.Assigned, v.Wave, v.Flip = true, id, e == L
				ctx.Send(l.Nbr, SMsg{Kind: msgWave, From: id, Wave: id, ToEnd: l.NbrEnd, Gap: l.Gap})
			}
			ctx.VoteToHalt()
			return
		}
		for _, m := range msgs {
			if m.Kind != msgWave || (v.Assigned && m.Wave >= v.Wave) {
				continue
			}
			v.Assigned = true
			v.Wave = m.Wave
			v.Pred = m.From
			v.PredGap = m.Gap
			v.Flip = m.ToEnd == R
			if o := m.ToEnd.opposite(); v.Has[o] {
				l := v.Keep[o]
				ctx.Send(l.Nbr, SMsg{Kind: msgWave, From: id, Wave: m.Wave, ToEnd: l.NbrEnd, Gap: l.Gap})
			}
		}
		ctx.VoteToHalt()
	}, pregel.WithName("scaffold-order"))
}

// rankOffsets computes every contig's scaffold end-coordinate with the
// list-ranking BPPA (package ppa, Figure 1 of the paper): chains are linked
// lists over Pred, each element's value is its length plus the gap before
// it, and the ranked sum is the coordinate of the contig's right edge.
func rankOffsets(g *pregel.Graph[SVertex, SMsg], cfg pregel.Config, clock *pregel.SimClock) (*pregel.Stats, error) {
	lr := pregel.NewGraph[ppa.LRVertex, ppa.LRMsg](cfg)
	lr.UseClock(clock)
	g.ForEach(func(id pregel.VertexID, v *SVertex) {
		if !v.Assigned {
			return
		}
		val := int64(v.Len)
		if v.Pred != noPred {
			val += int64(math.Round(v.PredGap))
		}
		lr.AddVertex(id, ppa.LRVertex{Val: val, Pred: v.Pred})
	})
	st, err := ppa.ListRank(lr)
	if err != nil {
		return st, err
	}
	st.Name = "scaffold-rank-lr"
	g.ForEach(func(id pregel.VertexID, v *SVertex) {
		if lv, ok := lr.Value(id); ok {
			v.EndSum = lv.Sum
		}
	})
	return st, nil
}
