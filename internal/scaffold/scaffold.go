// Package scaffold implements paired-end scaffolding as a new Pregel
// application on the engine of package pregel, extending the paper's
// workflow ①–⑥ with a seventh stage: contigs stop at every repeat and
// coverage gap, and read pairs with a known insert-size distribution are the
// classical way (ABySS, Ray, SSPACE) to order and orient them across those
// breaks.
//
// The stage runs over a brand-new graph type, the contig-link graph: one
// vertex per contig, one weighted, oriented edge per bundle of read pairs
// whose mates place on two different contigs. It is built and processed with
// the same machinery as the assembly proper:
//
//  1. mate placement + link bundling is a mini-MapReduce (§II extension 1):
//     each worker places its shard of pairs on a replicated contig k-mer
//     index and emits link observations keyed by oriented contig-end pairs,
//     which the reduce side bundles into weighted edges;
//  2. ambiguous-link filtering is a two-superstep Pregel handshake: every
//     contig keeps an end's link only when it is the end's single
//     well-supported candidate and the neighbor reciprocates;
//  3. chain labeling reuses the simplified Shiloach–Vishkin PPA of package
//     ppa to give every contig the ID of its scaffold chain;
//  4. orientation and ordering run as a wave job along the filtered chains,
//     and scaffold coordinates are computed with the list-ranking BPPA of
//     package ppa over the chain's predecessor links.
//
// Every job charges the shared simulated-cluster clock, so scaffolding
// supersteps, messages and simulated seconds appear in the same accounting
// as operations ①–⑥.
package scaffold

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"ppaassembler/internal/dna"
	"ppaassembler/internal/fastx"
	"ppaassembler/internal/pregel"
	"ppaassembler/internal/telemetry"
)

// End names one side of a contig in its stored orientation: L precedes base
// 0, R follows the last base. A forward-placed contig exposes R to its
// right-hand scaffold neighbor; a flipped contig exposes L.
type End uint8

// The two contig ends.
const (
	L End = iota
	R
)

func (e End) opposite() End { return e ^ 1 }

func (e End) String() string {
	if e == L {
		return "L"
	}
	return "R"
}

// Pair is one read pair in FR orientation (both mates 5'→3', facing each
// other across the fragment).
type Pair struct {
	R1, R2 string
}

// PairUp folds an interleaved read list (R1, R2, R1, R2, ... — the layout
// cmd/readsim -paired writes) into pairs. A trailing unpaired read is an
// error.
func PairUp(reads []string) ([]Pair, error) {
	if len(reads)%2 != 0 {
		return nil, fmt.Errorf("scaffold: %d interleaved reads do not form pairs", len(reads))
	}
	pairs := make([]Pair, 0, len(reads)/2)
	for i := 0; i+1 < len(reads); i += 2 {
		pairs = append(pairs, Pair{R1: reads[i], R2: reads[i+1]})
	}
	return pairs, nil
}

// Contig is one scaffolding input: an assembled contig with the vertex ID it
// will carry in the scaffolding jobs. IDs must be unique; the assembler
// passes its (worker, ordinal) contig IDs through unchanged.
type Contig struct {
	ID   pregel.VertexID
	Name string
	Seq  dna.Seq
}

// FromSeqs wraps raw sequences as Contigs with sequential IDs, for callers
// outside the assembly pipeline.
func FromSeqs(seqs []dna.Seq) []Contig {
	out := make([]Contig, len(seqs))
	for i, s := range seqs {
		out[i] = Contig{ID: pregel.VertexID(i + 1), Name: fmt.Sprintf("contig_%d", i+1), Seq: s}
	}
	return out
}

// Options configures a scaffolding run.
type Options struct {
	// Workers is the number of logical Pregel workers.
	Workers int
	// Parallel runs engine workers on goroutines (see pregel.Config).
	Parallel bool
	// Cost parameterizes the simulated cluster (zero value = default).
	Cost pregel.CostModel
	// Partitioner places the contig-link graph's vertices (nil = hash);
	// the assembly pipeline threads its own strategy through so the whole
	// run shares one placement.
	Partitioner pregel.Partitioner
	// MessageBytes is the charged wire size of one scaffolding message
	// (0 = engine default); the pipeline passes its Msg wire size so both
	// stages price traffic consistently.
	MessageBytes int
	// Clock, when non-nil, is the shared pipeline clock scaffolding charges
	// its supersteps to; nil starts a fresh clock.
	Clock *pregel.SimClock

	// CheckpointEvery, Checkpointer, Faults and Resume configure Pregel-
	// style fault tolerance for the scaffolding jobs, exactly as on
	// pregel.Config; the assembly pipeline threads one shared store and
	// fault plan through every stage.
	CheckpointEvery int
	Checkpointer    pregel.Checkpointer
	Faults          *pregel.FaultPlan
	Resume          bool
	// JobPrefix is prepended to every scaffolding job's checkpoint key
	// (see pregel.Config.JobPrefix); the workflow layer sets a per-op
	// prefix so keys stay deterministic in arbitrary compositions.
	JobPrefix string

	// Tracer, Metrics and Warn thread telemetry and non-fatal diagnostics
	// into every scaffolding job, exactly as on pregel.Config; the
	// assembly pipeline passes its own so one trace covers the whole run.
	Tracer  telemetry.Tracer
	Metrics *telemetry.Registry
	Warn    func(msg string)

	// SeedLen is the exact-match seed length for mate placement (default
	// 31, the paper's k; must exceed the assembly k-1 so seeds cannot tie
	// across the k-1-base overlap of adjacent contigs).
	SeedLen int
	// MinSupport is the minimum number of consistent pairs behind a link
	// (default 3). Weaker links are discarded by the filter job.
	MinSupport int
	// MinContigLen excludes shorter contigs from linking (default 500).
	// Short contigs are mostly collapsed repeats, which attract links from
	// every repeat copy; excluding them lets flank contigs link directly
	// across the repeat. Excluded contigs are still emitted as singleton
	// scaffolds. Set to 1 to scaffold everything.
	MinContigLen int
	// InsertMean is the library's mean insert size; 0 estimates it from
	// pairs whose mates place on the same contig.
	InsertMean float64
	// InsertSD is the insert-size standard deviation; 0 estimates it the
	// same way.
	InsertSD float64
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = 1
	}
	if o.SeedLen <= 0 {
		o.SeedLen = 31
	}
	if o.MinSupport <= 0 {
		o.MinSupport = 3
	}
	if o.MinContigLen <= 0 {
		o.MinContigLen = 500
	}
	if o.CheckpointEvery > 0 && o.Checkpointer == nil {
		o.Checkpointer = pregel.NewMemCheckpointer()
	}
	return o
}

func (o Options) validate() error {
	if o.SeedLen > dna.MaxK {
		return fmt.Errorf("scaffold: seed length %d exceeds %d", o.SeedLen, dna.MaxK)
	}
	if o.InsertMean < 0 || o.InsertSD < 0 {
		return fmt.Errorf("scaffold: negative insert parameters")
	}
	return nil
}

// Scaffold is one ordered, oriented chain of contigs. All slices index the
// Build input: Contigs[i] is an input-contig index, Flip[i] its orientation
// (true = reverse complement), Gaps[i] the estimated gap in bases between
// chain members i and i+1 (may be ≤ 0 when contigs abut or overlap), and
// Starts[i] the member's scaffold start coordinate as computed by the
// list-ranking job (gaps counted as estimated, not clamped).
type Scaffold struct {
	Contigs []int
	Flip    []bool
	Gaps    []int
	Starts  []int
}

// Len returns the number of chained contigs.
func (s *Scaffold) Len() int { return len(s.Contigs) }

// Span returns the rendered scaffold length: contig lengths plus gap runs
// clamped to at least one N per join.
func (s *Scaffold) Span(contigs []Contig) int {
	n := 0
	for i, ci := range s.Contigs {
		n += contigs[ci].Seq.Len()
		if i > 0 {
			n += clampGap(s.Gaps[i-1])
		}
	}
	return n
}

func clampGap(g int) int {
	if g < 1 {
		return 1
	}
	return g
}

// Result is the output of one scaffolding run.
type Result struct {
	// Scaffolds covers every input contig exactly once, multi-contig chains
	// and singletons alike, ordered by first contig index.
	Scaffolds []Scaffold

	// InsertMean and InsertSD are the library parameters used (estimated
	// from same-contig pairs when not supplied).
	InsertMean, InsertSD float64

	// Pair accounting: total pairs seen, pairs with both mates placed,
	// pairs placed on one contig (insert-size evidence), pairs placed on
	// two contigs (link evidence).
	PairsTotal, PairsPlaced, PairsSameContig, PairsLinking int

	// LinkBundles counts distinct oriented contig joins observed;
	// LinksKept those surviving support and ambiguity filtering.
	LinkBundles, LinksKept int

	// Excluded counts contigs below MinContigLen (emitted as singletons);
	// CycleContigs counts contigs on cyclic chains, which are conservatively
	// emitted as singletons too.
	Excluded, CycleContigs int

	// Stats aggregates every scaffolding job; Jobs holds the per-job
	// breakdown (link MapReduce, filter, S-V chains, ordering wave, list
	// ranking).
	Stats *pregel.Stats
	Jobs  []*pregel.Stats

	// SimSeconds is the simulated cluster time spent scaffolding.
	SimSeconds float64
}

// Build scaffolds contigs with the given read pairs: it places mates,
// bundles links, and runs the filter / chain-label / order / rank Pregel
// jobs described in the package comment.
func Build(contigs []Contig, pairs []Pair, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	if err := opt.validate(); err != nil {
		return nil, err
	}
	seen := map[pregel.VertexID]bool{}
	for _, c := range contigs {
		if seen[c.ID] {
			return nil, fmt.Errorf("scaffold: duplicate contig ID %x", c.ID)
		}
		seen[c.ID] = true
	}
	clock := opt.Clock
	if clock == nil {
		clock = pregel.NewSimClock(opt.Cost)
	}
	sim0 := clock.Seconds()
	cfg := pregel.Config{
		Workers: opt.Workers, Parallel: opt.Parallel, Cost: opt.Cost,
		Partitioner: opt.Partitioner, MessageBytes: opt.MessageBytes,
		CheckpointEvery: opt.CheckpointEvery, Checkpointer: opt.Checkpointer,
		Faults: opt.Faults, Resume: opt.Resume, JobPrefix: opt.JobPrefix,
		Tracer: opt.Tracer, Metrics: opt.Metrics, Warn: opt.Warn,
	}
	res := &Result{Stats: &pregel.Stats{Name: "scaffold", Workers: opt.Workers}}
	res.PairsTotal = len(pairs)

	included := make([]bool, len(contigs))
	for i, c := range contigs {
		included[i] = c.Seq.Len() >= opt.MinContigLen
		if !included[i] {
			res.Excluded++
		}
	}

	// 1. Replicated contig seed index (charged as serial build time).
	ix := buildIndex(contigs, included, opt.SeedLen, clock)

	// 2. Mate placement and link bundling (mini-MapReduce).
	links, inserts, st := bundleLinks(ix, pairs, opt, clock, res)
	res.LinkBundles = len(links)
	res.addJob(st)

	mean, sd, err := resolveInsert(opt, inserts)
	if err != nil {
		return nil, err
	}
	res.InsertMean, res.InsertSD = mean, sd

	// 3. Contig-link graph + the scaffolding Pregel jobs.
	g := buildLinkGraph(contigs, included, links, mean, cfg, clock)
	st, err = filterLinks(g, int32(opt.MinSupport))
	if err != nil {
		return nil, err
	}
	res.addJob(st)
	g.ForEach(func(id pregel.VertexID, v *SVertex) {
		for e := range v.Has {
			if v.Has[e] {
				res.LinksKept++
			}
		}
	})
	res.LinksKept /= 2 // each kept link is recorded on both endpoints

	st, err = chainLabel(g, cfg, clock)
	if err != nil {
		return nil, err
	}
	res.addJob(st)

	st, err = orderChains(g)
	if err != nil {
		return nil, err
	}
	res.addJob(st)

	st, err = rankOffsets(g, cfg, clock)
	if err != nil {
		return nil, err
	}
	res.addJob(st)

	// 4. Collect chains into scaffold records.
	if err := collect(g, contigs, included, res); err != nil {
		return nil, err
	}
	res.SimSeconds = clock.Seconds() - sim0
	res.Stats.SimSeconds = res.SimSeconds
	return res, nil
}

func (r *Result) addJob(st *pregel.Stats) {
	r.Jobs = append(r.Jobs, st)
	r.Stats.Add(st)
}

// resolveInsert fills in library parameters from options or same-contig
// observations.
func resolveInsert(opt Options, inserts sampleStats) (mean, sd float64, err error) {
	mean, sd = opt.InsertMean, opt.InsertSD
	if mean <= 0 {
		if inserts.n == 0 {
			return 0, 0, fmt.Errorf("scaffold: no same-contig pairs to estimate insert size from; set InsertMean")
		}
		mean = inserts.mean()
	}
	if sd <= 0 {
		if inserts.n > 1 {
			sd = inserts.sd()
		}
		if sd <= 0 {
			sd = 0.1 * mean
		}
	}
	return mean, sd, nil
}

// collect walks every chain from its head along Pred links and emits one
// Scaffold per chain, plus singletons for excluded and cyclic contigs.
func collect(g *pregel.Graph[SVertex, SMsg], contigs []Contig, included []bool, res *Result) error {
	idx := make(map[pregel.VertexID]int, len(contigs))
	for i, c := range contigs {
		idx[c.ID] = i
	}
	type memberInfo struct {
		contig int
		v      SVertex
	}
	chains := map[pregel.VertexID][]memberInfo{}
	var singles []int
	g.ForEach(func(id pregel.VertexID, v *SVertex) {
		ci := idx[id]
		if !v.Assigned {
			res.CycleContigs++
			singles = append(singles, ci)
			return
		}
		chains[v.Chain] = append(chains[v.Chain], memberInfo{ci, *v})
	})
	for i := range contigs {
		if !included[i] {
			singles = append(singles, i)
		}
	}

	keys := make([]pregel.VertexID, 0, len(chains))
	for k := range chains {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
	for _, k := range keys {
		members := chains[k]
		var head *memberInfo
		for i := range members {
			m := &members[i]
			if m.v.Pred == noPred {
				if head != nil {
					return fmt.Errorf("scaffold: chain %x has two heads", k)
				}
				head = m
			}
		}
		if head == nil {
			return fmt.Errorf("scaffold: chain %x has no head", k)
		}
		// succ maps each member to the member naming it as predecessor.
		succ := make(map[pregel.VertexID]*memberInfo, len(members))
		for i := range members {
			m := &members[i]
			if m.v.Pred != noPred {
				succ[m.v.Pred] = m
			}
		}
		var s Scaffold
		for m, n := head, 0; m != nil; n++ {
			if n > len(members) {
				return fmt.Errorf("scaffold: chain %x does not terminate", k)
			}
			if len(s.Contigs) > 0 {
				s.Gaps = append(s.Gaps, int(math.Round(m.v.PredGap)))
			}
			s.Contigs = append(s.Contigs, m.contig)
			s.Flip = append(s.Flip, m.v.Flip)
			s.Starts = append(s.Starts, int(m.v.EndSum)-contigs[m.contig].Seq.Len())
			m = succ[contigs[m.contig].ID]
		}
		if len(s.Contigs) != len(members) {
			return fmt.Errorf("scaffold: chain %x walk covered %d of %d members", k, len(s.Contigs), len(members))
		}
		res.Scaffolds = append(res.Scaffolds, s)
	}
	for _, ci := range singles {
		res.Scaffolds = append(res.Scaffolds, Scaffold{
			Contigs: []int{ci}, Flip: []bool{false}, Starts: []int{0},
		})
	}
	sort.Slice(res.Scaffolds, func(a, b int) bool {
		return res.Scaffolds[a].Contigs[0] < res.Scaffolds[b].Contigs[0]
	})
	return nil
}

// Records renders scaffolds as FASTA records: oriented contig sequences
// joined by runs of N sized by the estimated gap, clamped to at least one N
// so every join is visible in the output.
func Records(contigs []Contig, scafs []Scaffold) []fastx.Record {
	recs := make([]fastx.Record, 0, len(scafs))
	for i := range scafs {
		s := &scafs[i]
		var sb strings.Builder
		sb.Grow(s.Span(contigs))
		for j, ci := range s.Contigs {
			if j > 0 {
				sb.WriteString(strings.Repeat("N", clampGap(s.Gaps[j-1])))
			}
			seq := contigs[ci].Seq
			if s.Flip[j] {
				seq = seq.ReverseComplement()
			}
			sb.WriteString(seq.String())
		}
		recs = append(recs, fastx.Record{
			Name: fmt.Sprintf("scaffold_%d contigs=%d length=%d", i+1, s.Len(), sb.Len()),
			Seq:  sb.String(),
		})
	}
	return recs
}
