package scaffold

import (
	"encoding/binary"
	"math"
	"testing"

	"ppaassembler/internal/pregel"
	"ppaassembler/internal/pregel/ckpttest"
)

// fuzzGen derives struct fields deterministically from raw fuzz input.
type fuzzGen struct {
	data []byte
	i    int
}

func (g *fuzzGen) b() byte {
	if g.i >= len(g.data) {
		return 0
	}
	v := g.data[g.i]
	g.i++
	return v
}

func (g *fuzzGen) flag() bool { return g.b()&1 == 1 }

func (g *fuzzGen) u64() uint64 {
	var raw [8]byte
	for i := range raw {
		raw[i] = g.b()
	}
	return binary.LittleEndian.Uint64(raw[:])
}

func (g *fuzzGen) id() pregel.VertexID { return pregel.VertexID(g.u64()) }

// gap returns a comparable float64 (no NaN: NaN != NaN would trip the
// DeepEqual differential even though both codecs carry the bits faithfully).
func (g *fuzzGen) gap() float64 {
	f := math.Float64frombits(g.u64())
	if math.IsNaN(f) {
		return 0.25
	}
	return f
}

func (g *fuzzGen) link() Link {
	return Link{
		Nbr:     g.id(),
		SelfEnd: End(g.b()),
		NbrEnd:  End(g.b()),
		Weight:  int32(g.u64()),
		Gap:     g.gap(),
	}
}

func FuzzSVertexCodecDifferential(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{2, 1, 0, 0xff, 0xfe, 0xfd, 0xfc, 0xfb, 0xfa, 0xf9, 0xf8, 9, 8, 7})
	f.Fuzz(func(t *testing.T, data []byte) {
		g := &fuzzGen{data: data}
		l := g.link()
		ckpttest.RoundTrip[Link](t, &l)

		v := SVertex{
			Len:      int32(g.u64()),
			Chain:    g.id(),
			Assigned: g.flag(),
			Flip:     g.flag(),
			Wave:     g.id(),
			Pred:     g.id(),
			PredGap:  g.gap(),
			EndSum:   int64(g.u64()),
		}
		if nc := int(g.b()) % 5; nc > 0 {
			v.Cand = make([]Link, nc)
			for i := range v.Cand {
				v.Cand[i] = g.link()
			}
		}
		for i := 0; i < 2; i++ {
			v.Keep[i] = g.link()
			v.Has[i] = g.flag()
		}
		ckpttest.RoundTrip[SVertex](t, &v)
		ckpttest.NoPanic[Link](t, data)
		ckpttest.NoPanic[SVertex](t, data)
		ckpttest.Corrupt[SVertex](t, &v, data)
	})
}

func FuzzSMsgCodecDifferential(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{5, 0, 1, 0x10, 0x20, 0x30, 0x40, 0x50, 0x60, 0x70, 0x80})
	f.Fuzz(func(t *testing.T, data []byte) {
		g := &fuzzGen{data: data}
		m := SMsg{
			Kind:    g.b(),
			FromEnd: End(g.b()),
			ToEnd:   End(g.b()),
			From:    g.id(),
			Wave:    g.id(),
			Gap:     g.gap(),
		}
		ckpttest.RoundTrip[SMsg](t, &m)
		ckpttest.NoPanic[SMsg](t, data)
		ckpttest.Corrupt[SMsg](t, &m, data)
	})
}
