package ppa

import (
	"ppaassembler/internal/pregel"
)

// SVVertex is a vertex of an undirected graph for the simplified
// Shiloach–Vishkin connected-components PPA (§II, Figure 2). D is the
// parent link in the algorithm's forest; on termination D equals the
// smallest vertex ID in the component.
type SVVertex struct {
	D    pregel.VertexID
	Nbrs []pregel.VertexID
	DD   pregel.VertexID // D[D[v]] learned this round
}

// SVMsg carries one of the four per-round message kinds.
type SVMsg struct {
	Kind svKind
	From pregel.VertexID
	ID   pregel.VertexID
}

type svKind uint8

const (
	svQueryParent svKind = iota // ask recipient for its D
	svReplyParent               // ID = responder's D
	svNeighborD                 // ID = sender's D, sent along graph edges
	svHook                      // ID = proposed new (smaller) parent for recipient
)

const svChanged = "sv-changed"

// SVComponents labels every vertex of g with the minimum vertex ID in its
// connected component. Each round is four supersteps:
//
//	s≡0 (mod 4): every vertex asks its parent D[v] for D[D[v]]
//	s≡1: parents reply
//	s≡2: v records DD = D[D[v]] and broadcasts D[v] to its neighbors
//	s≡3: tree hooking — if D[u] is a root (DD == D[u]) and some neighbor
//	     has a smaller D, propose that D to the root; then shortcut
//	     D[u] ← DD. Hook proposals apply (min-fold) at the next s≡0.
//
// Rounds repeat until an aggregator reports that no D changed, giving the
// O(log n)-round bound of the simplified S-V algorithm (star hooking from
// the original PRAM algorithm is not needed; see §II).
func SVComponents(g *pregel.Graph[SVVertex, SVMsg]) (*pregel.Stats, error) {
	return g.Run(func(ctx *pregel.Context[SVMsg], id pregel.VertexID, v *SVVertex, msgs []SVMsg) {
		switch ctx.Superstep() % 4 {
		case 0:
			if ctx.Superstep() == 0 {
				v.D = id
			} else {
				// Convergence check: if the previous round changed no D
				// anywhere, stop (hook proposals below would be stale).
				if !ctx.PrevAggOr(svChanged) {
					ctx.VoteToHalt()
					return
				}
				// Apply hook proposals sent in the previous superstep.
				for _, m := range msgs {
					if m.Kind == svHook && m.ID < v.D {
						v.D = m.ID
						ctx.AggOr(svChanged, true)
					}
				}
			}
			ctx.Send(v.D, SVMsg{Kind: svQueryParent, From: id})
		case 1:
			for _, m := range msgs {
				if m.Kind == svQueryParent {
					ctx.Send(m.From, SVMsg{Kind: svReplyParent, ID: v.D})
				}
			}
		case 2:
			for _, m := range msgs {
				if m.Kind == svReplyParent {
					v.DD = m.ID
				}
			}
			for _, n := range v.Nbrs {
				ctx.Send(n, SVMsg{Kind: svNeighborD, ID: v.D})
			}
		case 3:
			rootOfMine := v.DD == v.D
			best := v.D
			for _, m := range msgs {
				if m.Kind == svNeighborD && m.ID < best {
					best = m.ID
				}
			}
			if rootOfMine && best < v.D {
				ctx.Send(v.D, SVMsg{Kind: svHook, ID: best})
				ctx.AggOr(svChanged, true)
			}
			if v.DD != v.D {
				v.D = v.DD // shortcutting
				ctx.AggOr(svChanged, true)
			}
		}
	}, pregel.WithName("simplified-sv"))
}

// BuildUndirected creates a graph with the given undirected edges. Vertex
// IDs are taken from the edge list; isolated vertices may be supplied in
// extra.
func BuildUndirected(cfg pregel.Config, edges [][2]pregel.VertexID, extra []pregel.VertexID) *pregel.Graph[SVVertex, SVMsg] {
	adj := map[pregel.VertexID][]pregel.VertexID{}
	for _, e := range edges {
		adj[e[0]] = append(adj[e[0]], e[1])
		adj[e[1]] = append(adj[e[1]], e[0])
	}
	for _, id := range extra {
		if _, ok := adj[id]; !ok {
			adj[id] = nil
		}
	}
	g := pregel.NewGraph[SVVertex, SVMsg](cfg)
	for id, nbrs := range adj {
		g.AddVertex(id, SVVertex{Nbrs: nbrs})
	}
	return g
}
