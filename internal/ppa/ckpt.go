// Checkpoint codec methods: the PPA vertex and message types opt into the
// Pregel engine's binary checkpoint format (v2) by implementing
// pregel.CheckpointAppender / pregel.CheckpointDecoder. Vertex IDs are
// fixed 8-byte little-endian because NullID (^0) and the flipped-ID space
// make varints pay worst case.

package ppa

import (
	"fmt"

	"ppaassembler/internal/pregel"
)

// AppendCheckpoint implements pregel.CheckpointAppender.
func (v *LRVertex) AppendCheckpoint(buf []byte) []byte {
	buf = pregel.AppendVarint(buf, v.Val)
	buf = pregel.AppendVarint(buf, v.Sum)
	return pregel.AppendUint64(buf, uint64(v.Pred))
}

// DecodeCheckpoint implements pregel.CheckpointDecoder.
func (v *LRVertex) DecodeCheckpoint(data []byte) ([]byte, error) {
	var err error
	if v.Val, data, err = pregel.ConsumeVarint(data); err != nil {
		return nil, err
	}
	if v.Sum, data, err = pregel.ConsumeVarint(data); err != nil {
		return nil, err
	}
	id, data, err := pregel.ConsumeUint64(data)
	if err != nil {
		return nil, err
	}
	v.Pred = pregel.VertexID(id)
	return data, nil
}

// AppendCheckpoint implements pregel.CheckpointAppender.
func (m *LRMsg) AppendCheckpoint(buf []byte) []byte {
	buf = pregel.AppendUint64(buf, uint64(m.From))
	buf = pregel.AppendVarint(buf, m.Sum)
	buf = pregel.AppendUint64(buf, uint64(m.Pred))
	return pregel.AppendBool(buf, m.Resp)
}

// DecodeCheckpoint implements pregel.CheckpointDecoder.
func (m *LRMsg) DecodeCheckpoint(data []byte) ([]byte, error) {
	id, data, err := pregel.ConsumeUint64(data)
	if err != nil {
		return nil, err
	}
	m.From = pregel.VertexID(id)
	if m.Sum, data, err = pregel.ConsumeVarint(data); err != nil {
		return nil, err
	}
	if id, data, err = pregel.ConsumeUint64(data); err != nil {
		return nil, err
	}
	m.Pred = pregel.VertexID(id)
	if m.Resp, data, err = pregel.ConsumeBool(data); err != nil {
		return nil, err
	}
	return data, nil
}

// AppendCheckpoint implements pregel.CheckpointAppender.
func (v *SVVertex) AppendCheckpoint(buf []byte) []byte {
	buf = pregel.AppendUint64(buf, uint64(v.D))
	buf = pregel.AppendUint64(buf, uint64(v.DD))
	buf = pregel.AppendUvarint(buf, uint64(len(v.Nbrs)))
	for _, n := range v.Nbrs {
		buf = pregel.AppendUint64(buf, uint64(n))
	}
	return buf
}

// DecodeCheckpoint implements pregel.CheckpointDecoder.
func (v *SVVertex) DecodeCheckpoint(data []byte) ([]byte, error) {
	id, data, err := pregel.ConsumeUint64(data)
	if err != nil {
		return nil, err
	}
	v.D = pregel.VertexID(id)
	if id, data, err = pregel.ConsumeUint64(data); err != nil {
		return nil, err
	}
	v.DD = pregel.VertexID(id)
	nn, data, err := pregel.ConsumeUvarint(data)
	if err != nil {
		return nil, err
	}
	if uint64(len(data)) < 8*nn {
		return nil, fmt.Errorf("ppa: corrupt SVVertex encoding: %d neighbors in %d bytes", nn, len(data))
	}
	v.Nbrs = nil
	if nn > 0 {
		v.Nbrs = make([]pregel.VertexID, nn)
	}
	for i := range v.Nbrs {
		if id, data, err = pregel.ConsumeUint64(data); err != nil {
			return nil, err
		}
		v.Nbrs[i] = pregel.VertexID(id)
	}
	return data, nil
}

// AppendCheckpoint implements pregel.CheckpointAppender.
func (m *SVMsg) AppendCheckpoint(buf []byte) []byte {
	buf = append(buf, byte(m.Kind))
	buf = pregel.AppendUint64(buf, uint64(m.From))
	return pregel.AppendUint64(buf, uint64(m.ID))
}

// DecodeCheckpoint implements pregel.CheckpointDecoder.
func (m *SVMsg) DecodeCheckpoint(data []byte) ([]byte, error) {
	if len(data) < 1 {
		return nil, fmt.Errorf("ppa: corrupt SVMsg encoding: truncated kind")
	}
	m.Kind = svKind(data[0])
	id, data, err := pregel.ConsumeUint64(data[1:])
	if err != nil {
		return nil, err
	}
	m.From = pregel.VertexID(id)
	if id, data, err = pregel.ConsumeUint64(data); err != nil {
		return nil, err
	}
	m.ID = pregel.VertexID(id)
	return data, nil
}
