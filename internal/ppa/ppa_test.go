package ppa

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ppaassembler/internal/pregel"
)

func TestListRankPaperExample(t *testing.T) {
	// Figure 1: five elements of value 1 rank to sums 1..5.
	ids := []pregel.VertexID{10, 20, 30, 40, 50}
	vals := []int64{1, 1, 1, 1, 1}
	g, err := BuildList(pregel.Config{Workers: 2}, ids, vals)
	if err != nil {
		t.Fatal(err)
	}
	st, err := ListRank(g)
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range ids {
		v, _ := g.Value(id)
		if v.Sum != int64(i+1) {
			t.Errorf("sum(%d) = %d, want %d", id, v.Sum, i+1)
		}
		if v.Pred != NullID {
			t.Errorf("pred(%d) = %d, want NullID", id, v.Pred)
		}
	}
	// Figure 1 finishes in 3 doubling rounds for 5 elements; each round is
	// two supersteps.
	if st.Supersteps > 8 {
		t.Errorf("supersteps = %d, want <= 8", st.Supersteps)
	}
}

func TestListRankSingleElement(t *testing.T) {
	g, _ := BuildList(pregel.Config{Workers: 1}, []pregel.VertexID{1}, []int64{7})
	if _, err := ListRank(g); err != nil {
		t.Fatal(err)
	}
	v, _ := g.Value(1)
	if v.Sum != 7 {
		t.Errorf("sum = %d, want 7", v.Sum)
	}
}

func TestListRankBuildListMismatch(t *testing.T) {
	if _, err := BuildList(pregel.Config{}, []pregel.VertexID{1}, nil); err == nil {
		t.Fatal("expected length-mismatch error")
	}
}

func TestListRankLogarithmicRounds(t *testing.T) {
	// BPPA constraint 4: supersteps must be O(log n). Each doubling round
	// is 2 supersteps, so expect <= 2*ceil(log2(n))+2 supersteps.
	for _, n := range []int{2, 10, 100, 1000, 5000} {
		ids := make([]pregel.VertexID, n)
		vals := make([]int64, n)
		for i := range ids {
			ids[i] = pregel.VertexID(i*7 + 1)
			vals[i] = 1
		}
		g, _ := BuildList(pregel.Config{Workers: 4}, ids, vals)
		st, err := ListRank(g)
		if err != nil {
			t.Fatal(err)
		}
		bound := 2*int(math.Ceil(math.Log2(float64(n)))) + 4
		if st.Supersteps > bound {
			t.Errorf("n=%d: supersteps = %d, want <= %d", n, st.Supersteps, bound)
		}
		last, _ := g.Value(ids[n-1])
		if last.Sum != int64(n) {
			t.Errorf("n=%d: tail sum = %d", n, last.Sum)
		}
	}
}

func TestPropListRankMatchesPrefixSums(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(200)
		ids := make([]pregel.VertexID, n)
		vals := make([]int64, n)
		perm := r.Perm(n * 3)
		want := make([]int64, n)
		acc := int64(0)
		for i := 0; i < n; i++ {
			ids[i] = pregel.VertexID(perm[i] + 1) // arbitrary storage order
			vals[i] = int64(r.Intn(100) - 50)
			acc += vals[i]
			want[i] = acc
		}
		g, err := BuildList(pregel.Config{Workers: 1 + r.Intn(5)}, ids, vals)
		if err != nil {
			return false
		}
		if _, err := ListRank(g); err != nil {
			return false
		}
		for i, id := range ids {
			v, ok := g.Value(id)
			if !ok || v.Sum != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func labels(g *pregel.Graph[SVVertex, SVMsg]) map[pregel.VertexID]pregel.VertexID {
	out := map[pregel.VertexID]pregel.VertexID{}
	g.ForEach(func(id pregel.VertexID, v *SVVertex) { out[id] = v.D })
	return out
}

func TestSVTwoComponents(t *testing.T) {
	edges := [][2]pregel.VertexID{{1, 2}, {2, 3}, {3, 4}, {10, 11}, {11, 12}}
	g := BuildUndirected(pregel.Config{Workers: 3}, edges, []pregel.VertexID{99})
	if _, err := SVComponents(g); err != nil {
		t.Fatal(err)
	}
	got := labels(g)
	for _, id := range []pregel.VertexID{1, 2, 3, 4} {
		if got[id] != 1 {
			t.Errorf("D[%d] = %d, want 1", id, got[id])
		}
	}
	for _, id := range []pregel.VertexID{10, 11, 12} {
		if got[id] != 10 {
			t.Errorf("D[%d] = %d, want 10", id, got[id])
		}
	}
	if got[99] != 99 {
		t.Errorf("isolated D[99] = %d, want 99", got[99])
	}
}

func TestSVCycle(t *testing.T) {
	// Contig labeling falls back to S-V exactly for cycles; make sure a
	// pure cycle labels to its minimum ID.
	var edges [][2]pregel.VertexID
	n := 17
	for i := 0; i < n; i++ {
		edges = append(edges, [2]pregel.VertexID{pregel.VertexID(i + 5), pregel.VertexID((i+1)%n + 5)})
	}
	g := BuildUndirected(pregel.Config{Workers: 4}, edges, nil)
	if _, err := SVComponents(g); err != nil {
		t.Fatal(err)
	}
	for id, d := range labels(g) {
		if d != 5 {
			t.Errorf("D[%d] = %d, want 5", id, d)
		}
	}
}

// refComponents computes components by union-find for comparison.
func refComponents(edges [][2]pregel.VertexID, extra []pregel.VertexID) map[pregel.VertexID]pregel.VertexID {
	parent := map[pregel.VertexID]pregel.VertexID{}
	var find func(pregel.VertexID) pregel.VertexID
	find = func(x pregel.VertexID) pregel.VertexID {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	add := func(x pregel.VertexID) {
		if _, ok := parent[x]; !ok {
			parent[x] = x
		}
	}
	for _, e := range edges {
		add(e[0])
		add(e[1])
		a, b := find(e[0]), find(e[1])
		if a != b {
			if a < b {
				parent[b] = a
			} else {
				parent[a] = b
			}
		}
	}
	for _, x := range extra {
		add(x)
	}
	out := map[pregel.VertexID]pregel.VertexID{}
	for x := range parent {
		out[x] = find(x)
	}
	return out
}

func TestPropSVMatchesUnionFind(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(80)
		var edges [][2]pregel.VertexID
		for i := 0; i < n; i++ {
			a := pregel.VertexID(r.Intn(n) + 1)
			b := pregel.VertexID(r.Intn(n) + 1)
			if a != b {
				edges = append(edges, [2]pregel.VertexID{a, b})
			}
		}
		if len(edges) == 0 {
			return true
		}
		g := BuildUndirected(pregel.Config{Workers: 1 + r.Intn(4)}, edges, nil)
		if _, err := SVComponents(g); err != nil {
			return false
		}
		want := refComponents(edges, nil)
		got := labels(g)
		if len(got) != len(want) {
			return false
		}
		for id, d := range got {
			if want[id] != d {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSVLogarithmicRounds(t *testing.T) {
	// Path graphs are the worst case for hooking; supersteps must stay
	// O(log n). Allow a generous constant: 4 supersteps/round.
	for _, n := range []int{10, 100, 1000, 4000} {
		var edges [][2]pregel.VertexID
		for i := 0; i < n-1; i++ {
			edges = append(edges, [2]pregel.VertexID{pregel.VertexID(i + 1), pregel.VertexID(i + 2)})
		}
		g := BuildUndirected(pregel.Config{Workers: 4}, edges, nil)
		st, err := SVComponents(g)
		if err != nil {
			t.Fatal(err)
		}
		bound := 4*(2*int(math.Ceil(math.Log2(float64(n))))+3) + 1
		if st.Supersteps > bound {
			t.Errorf("n=%d: supersteps = %d, exceeds O(log n) bound %d", n, st.Supersteps, bound)
		}
	}
}

func TestLRBeatsSVOnSupersteps(t *testing.T) {
	// The paper's Tables II/III hinge on list ranking using far fewer
	// supersteps and messages than S-V on the same path; verify the
	// relation holds for our implementations.
	n := 2000
	ids := make([]pregel.VertexID, n)
	vals := make([]int64, n)
	var edges [][2]pregel.VertexID
	for i := 0; i < n; i++ {
		ids[i] = pregel.VertexID(i + 1)
		vals[i] = 1
		if i > 0 {
			edges = append(edges, [2]pregel.VertexID{pregel.VertexID(i), pregel.VertexID(i + 1)})
		}
	}
	lr, _ := BuildList(pregel.Config{Workers: 4}, ids, vals)
	lrStats, err := ListRank(lr)
	if err != nil {
		t.Fatal(err)
	}
	sv := BuildUndirected(pregel.Config{Workers: 4}, edges, nil)
	svStats, err := SVComponents(sv)
	if err != nil {
		t.Fatal(err)
	}
	if lrStats.Supersteps >= svStats.Supersteps {
		t.Errorf("LR supersteps %d not fewer than S-V %d", lrStats.Supersteps, svStats.Supersteps)
	}
	if lrStats.Messages >= svStats.Messages {
		t.Errorf("LR messages %d not fewer than S-V %d", lrStats.Messages, svStats.Messages)
	}
}
