package ppa

import (
	"encoding/binary"
	"testing"

	"ppaassembler/internal/pregel"
	"ppaassembler/internal/pregel/ckpttest"
)

// fuzzGen derives struct fields deterministically from raw fuzz input.
type fuzzGen struct {
	data []byte
	i    int
}

func (g *fuzzGen) b() byte {
	if g.i >= len(g.data) {
		return 0
	}
	v := g.data[g.i]
	g.i++
	return v
}

func (g *fuzzGen) u64() uint64 {
	var raw [8]byte
	for i := range raw {
		raw[i] = g.b()
	}
	return binary.LittleEndian.Uint64(raw[:])
}

func (g *fuzzGen) id() pregel.VertexID { return pregel.VertexID(g.u64()) }

func FuzzLRCodecDifferential(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		g := &fuzzGen{data: data}
		v := LRVertex{Val: int64(g.u64()), Sum: int64(g.u64()), Pred: g.id()}
		ckpttest.RoundTrip[LRVertex](t, &v)
		m := LRMsg{From: g.id(), Sum: int64(g.u64()), Pred: g.id(), Resp: g.b()&1 == 1}
		ckpttest.RoundTrip[LRMsg](t, &m)
		ckpttest.NoPanic[LRVertex](t, data)
		ckpttest.NoPanic[LRMsg](t, data)
		ckpttest.Corrupt[LRVertex](t, &v, data)
		ckpttest.Corrupt[LRMsg](t, &m, data)
	})
}

func FuzzSVCodecDifferential(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{3, 0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff, 0x00, 0x11, 0x22, 0x33})
	f.Fuzz(func(t *testing.T, data []byte) {
		g := &fuzzGen{data: data}
		v := SVVertex{D: g.id(), DD: g.id()}
		if nn := int(g.b()) % 6; nn > 0 {
			v.Nbrs = make([]pregel.VertexID, nn)
			for i := range v.Nbrs {
				v.Nbrs[i] = g.id()
			}
		}
		ckpttest.RoundTrip[SVVertex](t, &v)
		m := SVMsg{Kind: svKind(g.b()), From: g.id(), ID: g.id()}
		ckpttest.RoundTrip[SVMsg](t, &m)
		ckpttest.NoPanic[SVVertex](t, data)
		ckpttest.NoPanic[SVMsg](t, data)
		ckpttest.Corrupt[SVVertex](t, &v, data)
		ckpttest.Corrupt[SVMsg](t, &m, data)
	})
}
