// Package ppa implements the two Practical Pregel Algorithms the paper
// reviews in §II and uses as building blocks for contig labeling: the BPPA
// for list ranking (Figure 1) and the simplified Shiloach–Vishkin connected
// components algorithm without star hooking (Figure 2).
//
// Both satisfy the PPA constraints: linear per-superstep space, computation
// and communication, and O(log n) supersteps.
package ppa

import (
	"fmt"

	"ppaassembler/internal/pregel"
)

// NullID marks "no predecessor" for list ranking.
const NullID = ^pregel.VertexID(0)

// LRVertex is a linked-list element for list ranking. Pred is the
// predecessor link (NullID at the head); Val is the element's value; Sum
// accumulates the sum of values from the element back to the head.
type LRVertex struct {
	Val  int64
	Sum  int64
	Pred pregel.VertexID
}

// LRMsg carries either a request for the recipient's (Sum, Pred) or the
// response to such a request.
type LRMsg struct {
	From pregel.VertexID
	Sum  int64
	Pred pregel.VertexID
	Resp bool
}

// ListRank runs the list-ranking BPPA over g: on return every vertex v has
// Sum = Σ Val(u) over u from v back to the head following Pred links, and
// Pred = NullID. Rounds take two supersteps (request, respond) and the
// pointer-jumping doubles covered distance each round, so the job finishes
// in O(log ℓ) supersteps for lists of length ℓ.
func ListRank(g *pregel.Graph[LRVertex, LRMsg]) (*pregel.Stats, error) {
	return g.Run(func(ctx *pregel.Context[LRMsg], id pregel.VertexID, v *LRVertex, msgs []LRMsg) {
		if ctx.Superstep() == 0 {
			v.Sum = v.Val
		}
		if ctx.Superstep()%2 == 0 {
			// Request phase: apply responses from the previous respond
			// phase, then issue the next request.
			for _, m := range msgs {
				if m.Resp {
					v.Sum += m.Sum
					v.Pred = m.Pred
				}
			}
			if v.Pred == NullID {
				ctx.VoteToHalt()
				return
			}
			ctx.Send(v.Pred, LRMsg{From: id})
			return
		}
		// Respond phase: answer every requester with our pre-round state.
		// Our own Sum/Pred were last modified in the previous request
		// phase, so they are exactly the synchronous-round values.
		for _, m := range msgs {
			if !m.Resp {
				ctx.Send(m.From, LRMsg{Sum: v.Sum, Pred: v.Pred, Resp: true})
			}
		}
		ctx.VoteToHalt()
	}, pregel.WithName("list-ranking"))
}

// BuildList adds a linked list of the given values to a fresh graph with
// the provided IDs (ids[0] is the head). It returns the graph ready for
// ListRank.
func BuildList(cfg pregel.Config, ids []pregel.VertexID, vals []int64) (*pregel.Graph[LRVertex, LRMsg], error) {
	if len(ids) != len(vals) {
		return nil, fmt.Errorf("ppa: %d ids but %d values", len(ids), len(vals))
	}
	g := pregel.NewGraph[LRVertex, LRMsg](cfg)
	for i, id := range ids {
		pred := NullID
		if i > 0 {
			pred = ids[i-1]
		}
		g.AddVertex(id, LRVertex{Val: vals[i], Pred: pred})
	}
	return g, nil
}
