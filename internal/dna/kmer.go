package dna

import "fmt"

// MaxK is the largest supported k-mer length. The paper assumes k <= 31 so a
// k-mer fits the low 62 bits of a 64-bit vertex ID, with the top two bits
// reserved (bit 63 discriminates contig/NULL IDs, bit 62 is the contig-end
// "flip" marker); see §IV-A and Figure 7.
const MaxK = 31

// Kmer is a k-mer packed into a uint64: the first (leftmost) base occupies
// the most significant 2 bits of the low 2k bits, so the integer value of a
// Kmer equals the paper's vertex-ID encoding (Figure 7(a)) and integer
// comparison coincides with lexicographic comparison of the sequences.
//
// A Kmer does not carry k; all operations take k explicitly, matching how
// the assembler fixes one global k per run.
type Kmer uint64

// KmerMask returns the mask covering the low 2k bits.
func KmerMask(k int) uint64 { return (uint64(1) << (2 * uint(k))) - 1 }

// ValidK reports whether k is a usable k-mer length. Odd k is required so
// that no k-mer equals its own reverse complement (a palindromic k-mer would
// make edge polarity ambiguous); the paper's experiments use k=31.
func ValidK(k int) error {
	if k < 1 || k > MaxK {
		return fmt.Errorf("dna: k=%d out of range [1,%d]", k, MaxK)
	}
	if k%2 == 0 {
		return fmt.Errorf("dna: k=%d must be odd so no k-mer is its own reverse complement", k)
	}
	return nil
}

// KmerFromSeq packs bases [off, off+k) of s into a Kmer.
func KmerFromSeq(s Seq, off, k int) Kmer {
	var v uint64
	for i := 0; i < k; i++ {
		v = v<<2 | uint64(s.At(off+i))
	}
	return Kmer(v)
}

// ParseKmer packs an ACGT string of length k.
func ParseKmer(s string) Kmer {
	var v uint64
	for i := 0; i < len(s); i++ {
		v = v<<2 | uint64(MustBase(s[i]))
	}
	return Kmer(v)
}

// Seq unpacks m into a Seq of length k.
func (m Kmer) Seq(k int) Seq {
	s := NewSeq(k)
	for i := k - 1; i >= 0; i-- {
		s = s.Append(Base(uint64(m) >> (2 * uint(i)) & 3))
	}
	return s
}

// String renders m as k letters.
func (m Kmer) String(k int) string {
	b := make([]byte, k)
	for i := k - 1; i >= 0; i-- {
		b[k-1-i] = Base(uint64(m) >> (2 * uint(i)) & 3).Byte()
	}
	return string(b)
}

// At returns base i (0 = leftmost) of m.
func (m Kmer) At(i, k int) Base { return Base(uint64(m) >> (2 * uint(k-1-i)) & 3) }

// AppendBase drops the leftmost base and appends b on the right: the k-mer
// reached by following an outgoing edge labelled b.
func (m Kmer) AppendBase(b Base, k int) Kmer {
	return Kmer((uint64(m)<<2 | uint64(b)) & KmerMask(k))
}

// PrependBase drops the rightmost base and prepends b on the left: the k-mer
// reached by following an incoming edge labelled b.
func (m Kmer) PrependBase(b Base, k int) Kmer {
	return Kmer(uint64(m)>>2 | uint64(b)<<(2*uint(k-1)))
}

// First returns the leftmost base of m.
func (m Kmer) First(k int) Base { return m.At(0, k) }

// Last returns the rightmost base of m.
func (m Kmer) Last() Base { return Base(uint64(m) & 3) }

// ReverseComplement returns the reverse complement of m, computed with
// word-level bit operations (complement all bases, then reverse the 2-bit
// groups via a byte swap plus in-byte swizzles).
func (m Kmer) ReverseComplement(k int) Kmer {
	v := ^uint64(m) // complement: A<->T, C<->G under the 2-bit encoding
	// Reverse the 32 2-bit groups of the whole word.
	v = v>>32 | v<<32
	v = (v&0xFFFF0000FFFF0000)>>16 | (v&0x0000FFFF0000FFFF)<<16
	v = (v&0xFF00FF00FF00FF00)>>8 | (v&0x00FF00FF00FF00FF)<<8
	v = (v&0xF0F0F0F0F0F0F0F0)>>4 | (v&0x0F0F0F0F0F0F0F0F)<<4
	v = (v&0xCCCCCCCCCCCCCCCC)>>2 | (v&0x3333333333333333)<<2
	// The k-mer now sits in the high 2k bits; shift it back down.
	return Kmer(v >> (64 - 2*uint(k)))
}

// Canonical returns the lexicographically smaller of m and its reverse
// complement (the canonical k-mer, §III "Directionality"), plus a flag that
// is true when m itself was already canonical. With odd k the two forms are
// never equal.
func (m Kmer) Canonical(k int) (canon Kmer, wasCanonical bool) {
	rc := m.ReverseComplement(k)
	if m <= rc {
		return m, true
	}
	return rc, false
}

// IsCanonical reports whether m is its own canonical form.
func (m Kmer) IsCanonical(k int) bool { return m <= m.ReverseComplement(k) }
