package dna

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKmerEncodingMatchesPaper(t *testing.T) {
	// Figure 7(a): "ATTGC" encodes as ...00 00 11 11 10 01.
	m := ParseKmer("ATTGC")
	want := Kmer(0<<8 | 3<<6 | 3<<4 | 2<<2 | 1)
	if m != want {
		t.Errorf("ParseKmer(ATTGC) = %b, want %b", m, want)
	}
	if got := m.String(5); got != "ATTGC" {
		t.Errorf("String = %q", got)
	}
}

func TestKmerSeqRoundTrip(t *testing.T) {
	for _, s := range []string{"A", "ACG", "TTTGGGCCAAA", "ACGTACGTACGTACGTACGTACGTACGTACG"} {
		k := len(s)
		m := ParseKmer(s)
		if got := m.Seq(k).String(); got != s {
			t.Errorf("Seq round trip of %q = %q", s, got)
		}
		if m2 := KmerFromSeq(ParseSeq(s), 0, k); m2 != m {
			t.Errorf("KmerFromSeq(%q) = %v, want %v", s, m2, m)
		}
	}
}

func TestKmerFromSeqOffset(t *testing.T) {
	s := ParseSeq("ACGTACG")
	if got := KmerFromSeq(s, 2, 3).String(3); got != "GTA" {
		t.Errorf("KmerFromSeq offset 2 = %q", got)
	}
}

func TestKmerAt(t *testing.T) {
	m := ParseKmer("GATTC")
	want := []Base{G, A, T, T, C}
	for i, w := range want {
		if got := m.At(i, 5); got != w {
			t.Errorf("At(%d) = %v, want %v", i, got, w)
		}
	}
	if m.First(5) != G || m.Last() != C {
		t.Error("First/Last wrong")
	}
}

func TestKmerAppendPrepend(t *testing.T) {
	m := ParseKmer("ACG")
	if got := m.AppendBase(T, 3).String(3); got != "CGT" {
		t.Errorf("AppendBase = %q", got)
	}
	if got := m.PrependBase(T, 3).String(3); got != "TAC" {
		t.Errorf("PrependBase = %q", got)
	}
}

func TestKmerReverseComplement(t *testing.T) {
	for _, tc := range []struct {
		in, want string
	}{
		{"A", "T"},
		{"GT", "AC"}, // Figure 6: "GT" and "AC" are reverse complements
		{"ATT", "AAT"},
		{"CAA", "TTG"},
		{"ACGTACGTACGTACGTACGTACGTACGTACG", "CGTACGTACGTACGTACGTACGTACGTACGT"},
	} {
		k := len(tc.in)
		if got := ParseKmer(tc.in).ReverseComplement(k).String(k); got != tc.want {
			t.Errorf("rc(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestKmerCanonical(t *testing.T) {
	// Figure 6: k-mers "GT" and "AC" both refer to DBG vertex "AC".
	gt, ac := ParseKmer("GT"), ParseKmer("AC")
	c1, was1 := gt.Canonical(2)
	if c1 != ac || was1 {
		t.Errorf("Canonical(GT) = %v,%v", c1.String(2), was1)
	}
	c2, was2 := ac.Canonical(2)
	if c2 != ac || !was2 {
		t.Errorf("Canonical(AC) = %v,%v", c2.String(2), was2)
	}
}

func TestValidK(t *testing.T) {
	for _, k := range []int{1, 3, 21, 31} {
		if err := ValidK(k); err != nil {
			t.Errorf("ValidK(%d) = %v", k, err)
		}
	}
	for _, k := range []int{0, -1, 2, 4, 30, 32, 33, 100} {
		if err := ValidK(k); err == nil {
			t.Errorf("ValidK(%d) accepted", k)
		}
	}
}

func randomKmer(r *rand.Rand, k int) Kmer {
	return Kmer(r.Uint64() & KmerMask(k))
}

func TestPropKmerRCMatchesSeqRC(t *testing.T) {
	// Word-level rc must agree with the per-base Seq implementation.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 1 + r.Intn(MaxK)
		m := randomKmer(r, k)
		return m.ReverseComplement(k).Seq(k).Equal(m.Seq(k).ReverseComplement())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPropKmerRCInvolution(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 1 + r.Intn(MaxK)
		m := randomKmer(r, k)
		return m.ReverseComplement(k).ReverseComplement(k) == m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPropOddKNoPalindromes(t *testing.T) {
	// With odd k no k-mer equals its own reverse complement — the invariant
	// ValidK protects, and the reason edge polarity is well defined.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := []int{1, 3, 5, 7, 15, 21, 31}[r.Intn(7)]
		m := randomKmer(r, k)
		return m.ReverseComplement(k) != m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestPropIntegerOrderIsLexOrder(t *testing.T) {
	// Integer comparison of Kmer values must coincide with lexicographic
	// comparison of their sequences (what Canonical relies on).
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 1 + r.Intn(MaxK)
		a, b := randomKmer(r, k), randomKmer(r, k)
		cmp := a.Seq(k).Compare(b.Seq(k))
		switch {
		case a < b:
			return cmp < 0
		case a > b:
			return cmp > 0
		default:
			return cmp == 0
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPropAppendPrependInverse(t *testing.T) {
	// Following an out-edge then the matching in-edge returns to the start.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 2 + r.Intn(MaxK-1)
		m := randomKmer(r, k)
		b := Base(r.Intn(4))
		first := m.First(k)
		return m.AppendBase(b, k).PrependBase(first, k) == m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
