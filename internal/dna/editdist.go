package dna

// EditDistance returns the Levenshtein distance between s and t (unit costs
// for substitution, insertion and deletion). Bubble filtering (§IV-B ④)
// compares the two arms of a candidate bubble with this distance and prunes
// the low-coverage arm when the distance is below a user threshold.
//
// The implementation is the standard two-row dynamic program: O(|s|·|t|)
// time, O(min(|s|,|t|)) space.
func EditDistance(s, t Seq) int {
	// Ensure t is the shorter side so the rows stay small.
	if s.Len() < t.Len() {
		s, t = t, s
	}
	n := t.Len()
	prev := make([]int, n+1)
	cur := make([]int, n+1)
	for j := 0; j <= n; j++ {
		prev[j] = j
	}
	for i := 1; i <= s.Len(); i++ {
		cur[0] = i
		si := s.At(i - 1)
		for j := 1; j <= n; j++ {
			cost := 1
			if si == t.At(j-1) {
				cost = 0
			}
			d := prev[j-1] + cost // substitution / match
			if up := prev[j] + 1; up < d {
				d = up // deletion from s
			}
			if left := cur[j-1] + 1; left < d {
				d = left // insertion into s
			}
			cur[j] = d
		}
		prev, cur = cur, prev
	}
	return prev[n]
}

// EditDistanceAtMost returns min(EditDistance(s,t), limit+1) but abandons the
// dynamic program as soon as the distance provably exceeds limit, and skips
// the DP entirely when the length difference alone exceeds it. Bubble
// filtering only needs "is the distance below the threshold", so this banded
// variant keeps operation ④ linear-ish for long near-identical arms.
func EditDistanceAtMost(s, t Seq, limit int) int {
	if limit < 0 {
		return 0
	}
	diff := s.Len() - t.Len()
	if diff < 0 {
		diff = -diff
	}
	if diff > limit {
		return limit + 1
	}
	if s.Len() < t.Len() {
		s, t = t, s
	}
	n := t.Len()
	prev := make([]int, n+1)
	cur := make([]int, n+1)
	for j := 0; j <= n; j++ {
		prev[j] = j
	}
	for i := 1; i <= s.Len(); i++ {
		cur[0] = i
		si := s.At(i - 1)
		rowMin := cur[0]
		for j := 1; j <= n; j++ {
			cost := 1
			if si == t.At(j-1) {
				cost = 0
			}
			d := prev[j-1] + cost
			if up := prev[j] + 1; up < d {
				d = up
			}
			if left := cur[j-1] + 1; left < d {
				d = left
			}
			cur[j] = d
			if d < rowMin {
				rowMin = d
			}
		}
		if rowMin > limit {
			return limit + 1
		}
		prev, cur = cur, prev
	}
	if prev[n] > limit {
		return limit + 1
	}
	return prev[n]
}
