package dna

import (
	"encoding/binary"
	"fmt"
)

// MarshalBinary implements encoding.BinaryMarshaler: base count as a uvarint
// followed by the occupied packed words, little-endian. Bits beyond the last
// base are masked off so equal sequences marshal to equal bytes regardless
// of construction history. Gob (used by the Pregel engine's checkpoint
// subsystem) picks this up automatically, which is what makes vertex values
// carrying sequences checkpointable.
func (s Seq) MarshalBinary() ([]byte, error) {
	words := (s.n + 31) / 32
	return s.AppendBinary(make([]byte, 0, binary.MaxVarintLen64+8*words)), nil
}

// AppendBinary appends the MarshalBinary encoding of s to buf and returns
// the extended slice. The encoding is self-delimiting (the base count
// determines the word count), so it composes into larger records — the
// Pregel checkpoint codec builds vertex encodings from it.
func (s Seq) AppendBinary(buf []byte) []byte {
	words := (s.n + 31) / 32
	buf = binary.AppendUvarint(buf, uint64(s.n))
	for i := 0; i < words; i++ {
		w := s.words[i]
		if i == words-1 {
			if rem := uint(s.n & 31); rem != 0 {
				w &= (uint64(1) << (rem * 2)) - 1
			}
		}
		buf = binary.LittleEndian.AppendUint64(buf, w)
	}
	return buf
}

// DecodeBinary replaces s with the sequence encoded at the front of data
// and returns the remaining bytes: the streaming inverse of AppendBinary
// (UnmarshalBinary, by contrast, requires data to hold exactly one
// sequence). The decoded sequence shares no storage with data.
func (s *Seq) DecodeBinary(data []byte) ([]byte, error) {
	n, r := binary.Uvarint(data)
	if r <= 0 {
		return nil, fmt.Errorf("dna: corrupt Seq encoding: bad length")
	}
	data = data[r:]
	words := (int(n) + 31) / 32
	if len(data) < 8*words {
		return nil, fmt.Errorf("dna: corrupt Seq encoding: %d bytes for %d bases", len(data), n)
	}
	w := make([]uint64, words)
	for i := range w {
		w[i] = binary.LittleEndian.Uint64(data[8*i:])
	}
	s.words, s.n = w, int(n)
	return data[8*words:], nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler, the inverse of
// MarshalBinary. The decoded sequence shares no storage with data.
func (s *Seq) UnmarshalBinary(data []byte) error {
	n, r := binary.Uvarint(data)
	if r <= 0 {
		return fmt.Errorf("dna: corrupt Seq encoding: bad length")
	}
	data = data[r:]
	words := (int(n) + 31) / 32
	if len(data) != 8*words {
		return fmt.Errorf("dna: corrupt Seq encoding: %d bytes for %d bases", len(data), n)
	}
	w := make([]uint64, words)
	for i := range w {
		w[i] = binary.LittleEndian.Uint64(data[8*i:])
	}
	s.words, s.n = w, int(n)
	return nil
}
