package dna

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestBaseComplement(t *testing.T) {
	pairs := map[Base]Base{A: T, T: A, C: G, G: C}
	for b, want := range pairs {
		if got := b.Complement(); got != want {
			t.Errorf("Complement(%v) = %v, want %v", b, got, want)
		}
		if got := b.Complement().Complement(); got != b {
			t.Errorf("double complement of %v = %v", b, got)
		}
	}
}

func TestBaseFromByte(t *testing.T) {
	for _, tc := range []struct {
		in   byte
		want Base
		ok   bool
	}{
		{'A', A, true}, {'a', A, true},
		{'C', C, true}, {'c', C, true},
		{'G', G, true}, {'g', G, true},
		{'T', T, true}, {'t', T, true},
		{'N', 0, false}, {'X', 0, false}, {' ', 0, false},
	} {
		got, ok := BaseFromByte(tc.in)
		if ok != tc.ok || (ok && got != tc.want) {
			t.Errorf("BaseFromByte(%q) = %v,%v want %v,%v", tc.in, got, ok, tc.want, tc.ok)
		}
	}
}

func TestMustBasePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustBase('N') did not panic")
		}
	}()
	MustBase('N')
}

func TestParseSeqRoundTrip(t *testing.T) {
	for _, s := range []string{"", "A", "ACGT", "TTTT", "GATTACA",
		strings.Repeat("ACGT", 20),       // crosses a word boundary
		strings.Repeat("T", 32),          // exactly one word
		strings.Repeat("G", 33),          // one base past a word
		strings.Repeat("CAGT", 64) + "A", // several words
	} {
		q := ParseSeq(s)
		if q.Len() != len(s) {
			t.Errorf("ParseSeq(%q).Len() = %d, want %d", s, q.Len(), len(s))
		}
		if got := q.String(); got != s {
			t.Errorf("round trip of %q = %q", s, got)
		}
	}
}

func TestSeqAt(t *testing.T) {
	s := ParseSeq("ACGTGCA")
	want := []Base{A, C, G, T, G, C, A}
	for i, w := range want {
		if got := s.At(i); got != w {
			t.Errorf("At(%d) = %v, want %v", i, got, w)
		}
	}
}

func TestSeqAtPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("At(-1) did not panic")
		}
	}()
	ParseSeq("ACG").At(-1)
}

func TestSeqAppendDoesNotCorruptAliases(t *testing.T) {
	// Two sequences extended from a common prefix must not clobber each
	// other through a shared backing array.
	base := ParseSeq("ACGTACGTA") // 9 bases: mid-word
	x := base.Append(G)
	y := base.Append(T)
	if got := x.String(); got != "ACGTACGTAG" {
		t.Errorf("x = %q after sibling append", got)
	}
	if got := y.String(); got != "ACGTACGTAT" {
		t.Errorf("y = %q", got)
	}
}

func TestSeqSliceConcat(t *testing.T) {
	s := ParseSeq("ACGTGGCATTA")
	if got := s.Slice(2, 7).String(); got != "GTGGC" {
		t.Errorf("Slice(2,7) = %q", got)
	}
	if got := s.Slice(0, 0).String(); got != "" {
		t.Errorf("empty slice = %q", got)
	}
	a, b := ParseSeq("ACG"), ParseSeq("TTC")
	if got := a.Concat(b).String(); got != "ACGTTC" {
		t.Errorf("Concat = %q", got)
	}
}

func TestSeqSlicePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Slice(3,2) did not panic")
		}
	}()
	ParseSeq("ACGT").Slice(3, 2)
}

func TestReverseComplement(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"", ""},
		{"A", "T"},
		{"ACGT", "ACGT"}, // palindrome
		{"AAGT", "ACTT"},
		{"ATTGCAAGTC", "GACTTGCAAT"}, // strand 1 of Figure 3
	} {
		if got := ParseSeq(tc.in).ReverseComplement().String(); got != tc.want {
			t.Errorf("rc(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestSeqEqualCompare(t *testing.T) {
	a := ParseSeq("ACGTT")
	b := ParseSeq("ACGTT")
	c := ParseSeq("ACGTG")
	d := ParseSeq("ACGT")
	if !a.Equal(b) {
		t.Error("identical sequences not Equal")
	}
	if a.Equal(c) || a.Equal(d) {
		t.Error("different sequences reported Equal")
	}
	if a.Compare(b) != 0 || a.Compare(c) <= 0 || c.Compare(a) >= 0 {
		t.Error("Compare ordering wrong for same-length sequences")
	}
	if d.Compare(a) >= 0 || a.Compare(d) <= 0 {
		t.Error("prefix must order before its extension")
	}
}

func TestSeqGC(t *testing.T) {
	if got := ParseSeq("GGCCAATT").GC(); got != 4 {
		t.Errorf("GC = %d, want 4", got)
	}
	if got := ParseSeq("").GC(); got != 0 {
		t.Errorf("GC of empty = %d", got)
	}
}

func TestSeqCanonical(t *testing.T) {
	s := ParseSeq("TTG") // rc = CAA < TTG
	canon, was := s.Canonical()
	if was || canon.String() != "CAA" {
		t.Errorf("Canonical(TTG) = %q,%v", canon.String(), was)
	}
	s2 := ParseSeq("AAC") // rc = GTT > AAC
	canon2, was2 := s2.Canonical()
	if !was2 || canon2.String() != "AAC" {
		t.Errorf("Canonical(AAC) = %q,%v", canon2.String(), was2)
	}
}

// randomSeqString generates a random ACGT string of length up to maxLen.
func randomSeqString(r *rand.Rand, maxLen int) string {
	n := r.Intn(maxLen + 1)
	b := make([]byte, n)
	for i := range b {
		b[i] = "ACGT"[r.Intn(4)]
	}
	return string(b)
}

func TestPropRCInvolution(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := ParseSeq(randomSeqString(r, 200))
		return s.ReverseComplement().ReverseComplement().Equal(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropCanonicalInvariant(t *testing.T) {
	// canonical(s) == canonical(rc(s)) for all s.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := ParseSeq(randomSeqString(r, 100))
		c1, _ := s.Canonical()
		c2, _ := s.ReverseComplement().Canonical()
		return c1.Equal(c2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropSliceConcatIdentity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := ParseSeq(randomSeqString(r, 150))
		if s.Len() == 0 {
			return true
		}
		cut := r.Intn(s.Len())
		return s.Slice(0, cut).Concat(s.Slice(cut, s.Len())).Equal(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
