package dna

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEditDistanceBasic(t *testing.T) {
	for _, tc := range []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"", "ACG", 3},
		{"ACG", "", 3},
		{"ACGT", "ACGT", 0},
		{"ACGT", "ACGA", 1},
		{"ACGT", "AGT", 1},   // one deletion
		{"ACGT", "AACGT", 1}, // one insertion
		{"AAAA", "TTTT", 4},
		{"GCAAG", "GCTAG", 1}, // bubble arms from Figure 5 region
		{"ACTG", "GTCA", 4},
	} {
		if got := EditDistance(ParseSeq(tc.a), ParseSeq(tc.b)); got != tc.want {
			t.Errorf("EditDistance(%q,%q) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestEditDistanceAtMost(t *testing.T) {
	a, b := ParseSeq("ACGTACGTAC"), ParseSeq("TGCATGCATG")
	full := EditDistance(a, b)
	if got := EditDistanceAtMost(a, b, full); got != full {
		t.Errorf("AtMost(limit=full) = %d, want %d", got, full)
	}
	if got := EditDistanceAtMost(a, b, full-1); got != full {
		t.Errorf("AtMost(limit=full-1) = %d, want %d (limit+1)", got, full)
	}
	if got := EditDistanceAtMost(a, b, 0); got != 1 {
		t.Errorf("AtMost(limit=0) = %d, want 1", got)
	}
	if got := EditDistanceAtMost(ParseSeq("AAAAAAAA"), ParseSeq("A"), 3); got != 4 {
		t.Errorf("length-gap early exit = %d, want 4", got)
	}
	if got := EditDistanceAtMost(a, a, -1); got != 0 {
		t.Errorf("negative limit = %d, want 0", got)
	}
}

// naiveEdit is a straightforward full-matrix reference implementation.
func naiveEdit(a, b string) int {
	m, n := len(a), len(b)
	d := make([][]int, m+1)
	for i := range d {
		d[i] = make([]int, n+1)
		d[i][0] = i
	}
	for j := 0; j <= n; j++ {
		d[0][j] = j
	}
	for i := 1; i <= m; i++ {
		for j := 1; j <= n; j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			best := d[i-1][j-1] + cost
			if v := d[i-1][j] + 1; v < best {
				best = v
			}
			if v := d[i][j-1] + 1; v < best {
				best = v
			}
			d[i][j] = best
		}
	}
	return d[m][n]
}

func TestPropEditDistanceMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomSeqString(r, 40)
		b := randomSeqString(r, 40)
		want := naiveEdit(a, b)
		if EditDistance(ParseSeq(a), ParseSeq(b)) != want {
			return false
		}
		limit := r.Intn(10)
		got := EditDistanceAtMost(ParseSeq(a), ParseSeq(b), limit)
		if want <= limit {
			return got == want
		}
		return got == limit+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropEditDistanceMetric(t *testing.T) {
	// Symmetry and triangle inequality on random triples.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := ParseSeq(randomSeqString(r, 25)), ParseSeq(randomSeqString(r, 25)), ParseSeq(randomSeqString(r, 25))
		ab, ba := EditDistance(a, b), EditDistance(b, a)
		if ab != ba {
			return false
		}
		return EditDistance(a, c) <= ab+EditDistance(b, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
