package dna

import (
	"fmt"
	"strings"
)

// Seq is an immutable DNA sequence packed 2 bits per base, 32 bases per
// uint64 word. Base i occupies bits [2i, 2i+2) of word i/32.
//
// Contig vertices store their (arbitrarily long) sequences as Seq values,
// matching the paper's variable-length bitmap contig format (Figure 9).
// Construct sequences incrementally with Builder; the value methods on Seq
// never mutate shared state.
type Seq struct {
	words []uint64
	n     int
}

// Builder assembles a Seq one base (or subsequence) at a time in amortized
// O(1) per base. The zero value is ready to use.
type Builder struct {
	words []uint64
	n     int
}

// Grow reserves capacity for n additional bases.
func (b *Builder) Grow(n int) {
	need := (b.n + n + 31) / 32
	if need <= cap(b.words) {
		return
	}
	w := make([]uint64, len(b.words), need)
	copy(w, b.words)
	b.words = w
}

// Append adds one base.
func (b *Builder) Append(base Base) {
	if b.n&31 == 0 {
		b.words = append(b.words, uint64(base))
	} else {
		b.words[b.n>>5] |= uint64(base) << (uint(b.n&31) * 2)
	}
	b.n++
}

// AppendSeq adds all bases of s.
func (b *Builder) AppendSeq(s Seq) {
	b.Grow(s.n)
	for i := 0; i < s.n; i++ {
		b.Append(s.At(i))
	}
}

// Len returns the number of bases appended so far.
func (b *Builder) Len() int { return b.n }

// Seq finalizes the builder. The builder must not be appended to afterwards
// (the returned Seq aliases its storage); Reset it to build another sequence.
func (b *Builder) Seq() Seq { return Seq{words: b.words, n: b.n} }

// Reset clears the builder for reuse without retaining storage.
func (b *Builder) Reset() { b.words, b.n = nil, 0 }

// NewSeq returns an empty sequence (kept for symmetry; Builder is the way to
// construct long sequences).
func NewSeq(n int) Seq {
	return Seq{words: make([]uint64, 0, (n+31)/32)}
}

// ParseSeq converts an ACGT string into a Seq. It panics on characters
// outside ACGT (case-insensitive); reads containing 'N' must be split by the
// caller before parsing (the DBG-construction map phase does this).
func ParseSeq(s string) Seq {
	var b Builder
	b.Grow(len(s))
	for i := 0; i < len(s); i++ {
		b.Append(MustBase(s[i]))
	}
	return b.Seq()
}

// Len returns the number of bases in s.
func (s Seq) Len() int { return s.n }

// At returns base i. It panics if i is out of range.
func (s Seq) At(i int) Base {
	if i < 0 || i >= s.n {
		panic("dna: Seq index out of range")
	}
	return Base(s.words[i>>5] >> (uint(i&31) * 2) & 3)
}

// Append returns a fresh sequence equal to s extended by one base. It copies
// s (O(len)); use Builder when appending in a loop.
func (s Seq) Append(b Base) Seq {
	var bld Builder
	bld.Grow(s.n + 1)
	bld.AppendSeq(s)
	bld.Append(b)
	return bld.Seq()
}

// Clone returns a deep copy of s.
func (s Seq) Clone() Seq {
	w := make([]uint64, len(s.words))
	copy(w, s.words)
	return Seq{words: w, n: s.n}
}

// Slice returns the subsequence [lo, hi) as a fresh Seq.
func (s Seq) Slice(lo, hi int) Seq {
	if lo < 0 || hi > s.n || lo > hi {
		panic("dna: Seq slice bounds out of range")
	}
	var b Builder
	b.Grow(hi - lo)
	for i := lo; i < hi; i++ {
		b.Append(s.At(i))
	}
	return b.Seq()
}

// Concat returns s followed by t.
func (s Seq) Concat(t Seq) Seq {
	var b Builder
	b.Grow(s.n + t.n)
	b.AppendSeq(s)
	b.AppendSeq(t)
	return b.Seq()
}

// ReverseComplement returns the reverse complement of s.
func (s Seq) ReverseComplement() Seq {
	var b Builder
	b.Grow(s.n)
	for i := s.n - 1; i >= 0; i-- {
		b.Append(s.At(i).Complement())
	}
	return b.Seq()
}

// String renders s as an ACGT string.
func (s Seq) String() string {
	var b strings.Builder
	b.Grow(s.n)
	for i := 0; i < s.n; i++ {
		b.WriteByte(s.At(i).Byte())
	}
	return b.String()
}

// Equal reports whether s and t have identical length and content.
func (s Seq) Equal(t Seq) bool {
	if s.n != t.n {
		return false
	}
	full := s.n >> 5
	for i := 0; i < full; i++ {
		if s.words[i] != t.words[i] {
			return false
		}
	}
	if rem := uint(s.n & 31); rem != 0 {
		mask := (uint64(1) << (rem * 2)) - 1
		if s.words[full]&mask != t.words[full]&mask {
			return false
		}
	}
	return true
}

// Compare orders sequences lexicographically by base value (A<C<G<T), with a
// shorter prefix ordering before its extensions. It returns -1, 0 or +1.
func (s Seq) Compare(t Seq) int {
	n := s.n
	if t.n < n {
		n = t.n
	}
	for i := 0; i < n; i++ {
		a, b := s.At(i), t.At(i)
		if a != b {
			if a < b {
				return -1
			}
			return 1
		}
	}
	switch {
	case s.n < t.n:
		return -1
	case s.n > t.n:
		return 1
	}
	return 0
}

// GC returns the number of G and C bases in s.
func (s Seq) GC() int {
	gc := 0
	for i := 0; i < s.n; i++ {
		if b := s.At(i); b == G || b == C {
			gc++
		}
	}
	return gc
}

// Canonical returns the lexicographically smaller of s and its reverse
// complement, together with a flag that is true when s itself was canonical.
func (s Seq) Canonical() (canon Seq, wasCanonical bool) {
	rc := s.ReverseComplement()
	if s.Compare(rc) <= 0 {
		return s, true
	}
	return rc, false
}

// Words exposes the packed 2-bit words for serialization. The returned
// slice must not be modified.
func (s Seq) Words() []uint64 { return s.words }

// SeqFromWords reconstructs a sequence from its packed words (the inverse
// of Words). It reports an error when the word count does not match n.
func SeqFromWords(words []uint64, n int) (Seq, error) {
	if n < 0 || len(words) != (n+31)/32 {
		return Seq{}, fmt.Errorf("dna: %d words cannot hold %d bases", len(words), n)
	}
	w := make([]uint64, len(words))
	copy(w, words)
	return Seq{words: w, n: n}, nil
}
