// Package dna provides the DNA-sequence substrate used throughout the
// assembler: 2-bit packed sequences, reverse complements, canonical k-mers,
// the 64-bit integer encoding of k-mers used as Pregel vertex IDs, and the
// edit-distance routine used by bubble filtering.
//
// The bit encoding follows the paper (§IV-A): A=00, C=01, G=10, T=11. With
// this encoding the complement of a base b is 3-b (equivalently b XOR 0b11),
// which makes reverse complementation branch-free.
package dna

import "fmt"

// Base is a single nucleotide in 2-bit encoding: A=0, C=1, G=2, T=3.
type Base uint8

// The four nucleotides.
const (
	A Base = 0
	C Base = 1
	G Base = 2
	T Base = 3
)

// Complement returns the Watson-Crick complement: A<->T, C<->G.
func (b Base) Complement() Base { return b ^ 3 }

// Byte returns the upper-case ASCII letter for b.
func (b Base) Byte() byte { return "ACGT"[b&3] }

// String returns the single-letter representation of b.
func (b Base) String() string { return string(b.Byte()) }

// BaseFromByte converts an ASCII nucleotide letter (upper or lower case) to a
// Base. The second return value reports whether c was a valid A/C/G/T letter;
// 'N' and any other byte return false.
func BaseFromByte(c byte) (Base, bool) {
	switch c {
	case 'A', 'a':
		return A, true
	case 'C', 'c':
		return C, true
	case 'G', 'g':
		return G, true
	case 'T', 't':
		return T, true
	}
	return 0, false
}

// MustBase is like BaseFromByte but panics on invalid input. It is intended
// for tests and literals.
func MustBase(c byte) Base {
	b, ok := BaseFromByte(c)
	if !ok {
		panic(fmt.Sprintf("dna: invalid base %q", c))
	}
	return b
}
