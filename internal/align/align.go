// Package align implements a seed-and-extend aligner of contigs against a
// reference sequence. It is the substrate behind the QUAST-style quality
// metrics of package quality (the paper evaluates with QUAST [7], which is
// closed to this offline build): seeds are exact seed-length k-mer matches,
// hits on one diagonal are chained into blocks, blocks are extended
// outwards through isolated mismatches, and adjacent blocks are chained
// with small diagonal shifts counted as indels. Inconsistent chains
// (strand flips, large jumps) are reported as misassembly breakpoints.
package align

import (
	"sort"

	"ppaassembler/internal/dna"
)

// Options tunes the aligner.
type Options struct {
	// SeedLen is the exact-match seed length (default 15).
	SeedLen int
	// MaxSeedGap is the largest query gap between seed hits merged into
	// one block (default 60).
	MaxSeedGap int
	// MaxIndel is the largest diagonal shift between chained blocks that
	// counts as an indel rather than a misassembly (default 5).
	MaxIndel int
	// MisassemblyGap is the reference-jump threshold beyond which adjacent
	// blocks form a misassembly breakpoint (default 100; QUAST uses 1 kbp
	// at chromosome scale).
	MisassemblyGap int
}

func (o Options) withDefaults() Options {
	if o.SeedLen <= 0 {
		o.SeedLen = 15
	}
	if o.MaxSeedGap <= 0 {
		o.MaxSeedGap = 60
	}
	if o.MaxIndel <= 0 {
		o.MaxIndel = 5
	}
	if o.MisassemblyGap <= 0 {
		o.MisassemblyGap = 100
	}
	return o
}

// Block is one gapless aligned segment: query bases [QStart, QEnd) match
// reference bases [RStart, REnd) (equal lengths) with the given number of
// mismatches. RC blocks align the reverse complement of the query; their
// query coordinates are reported in the original (forward) query space.
type Block struct {
	QStart, QEnd int
	RStart, REnd int
	RC           bool
	Mismatches   int
}

// Len returns the aligned length.
func (b Block) Len() int { return b.QEnd - b.QStart }

// Result is the alignment of one query against the reference.
type Result struct {
	// Blocks is the chained, query-ordered block set.
	Blocks []Block
	// Mismatches and Indels total over the chain.
	Mismatches, Indels int
	// Breakpoints counts misassembly events between adjacent blocks.
	Breakpoints int
	// AlignedLen is the number of query bases inside blocks; UnalignedLen
	// the rest.
	AlignedLen, UnalignedLen int
}

// Index is a seed index over the forward strand of a reference.
type Index struct {
	opt Options
	ref dna.Seq
	pos map[uint64][]int32
}

// NewIndex indexes the reference.
func NewIndex(ref dna.Seq, opt Options) *Index {
	opt = opt.withDefaults()
	ix := &Index{opt: opt, ref: ref, pos: make(map[uint64][]int32)}
	s := opt.SeedLen
	for i := 0; i+s <= ref.Len(); i++ {
		key := uint64(dna.KmerFromSeq(ref, i, s))
		ix.pos[key] = append(ix.pos[key], int32(i))
	}
	return ix
}

// Ref returns the indexed reference.
func (ix *Index) Ref() dna.Seq { return ix.ref }

// Align aligns the query against the reference, trying both orientations
// and chaining the better block set.
func (ix *Index) Align(q dna.Seq) Result {
	fwd := ix.alignOriented(q, false)
	rev := ix.alignOriented(q.ReverseComplement(), true)
	// Merge: a contig can legitimately contain blocks of both strands only
	// when misassembled; pick the orientation set covering more bases and
	// report strand mixing through the per-orientation chains.
	blocks := append(fwd, rev...)
	return chain(blocks, q.Len(), ix.opt)
}

// alignOriented finds gapless blocks for one query orientation. rc marks
// blocks so their query coordinates can be mapped back to forward space.
func (ix *Index) alignOriented(q dna.Seq, rc bool) []Block {
	s := ix.opt.SeedLen
	if q.Len() < s {
		return nil
	}
	type hit struct{ qi, ri int32 }
	var hits []hit
	for i := 0; i+s <= q.Len(); i++ {
		key := uint64(dna.KmerFromSeq(q, i, s))
		for _, p := range ix.pos[key] {
			hits = append(hits, hit{int32(i), p})
		}
	}
	if len(hits) == 0 {
		return nil
	}
	sort.Slice(hits, func(a, b int) bool {
		da, db := hits[a].ri-hits[a].qi, hits[b].ri-hits[b].qi
		if da != db {
			return da < db
		}
		return hits[a].qi < hits[b].qi
	})
	var blocks []Block
	i := 0
	for i < len(hits) {
		diag := hits[i].ri - hits[i].qi
		j := i
		start := hits[i].qi
		last := hits[i].qi
		flush := func(lo, hi int32) {
			b := ix.extendBlock(q, int(lo), int(hi)+s, int(diag))
			if b.Len() >= s {
				if rc {
					b.RC = true
					b.QStart, b.QEnd = q.Len()-b.QEnd, q.Len()-b.QStart
				}
				blocks = append(blocks, b)
			}
		}
		for j < len(hits) && hits[j].ri-hits[j].qi == diag {
			if int(hits[j].qi-last) > ix.opt.MaxSeedGap {
				flush(start, last)
				start = hits[j].qi
			}
			last = hits[j].qi
			j++
		}
		flush(start, last)
		i = j
	}
	return blocks
}

// extendBlock counts mismatches over [qlo, qhi) on the given diagonal and
// extends both ends while fewer than three consecutive mismatches occur.
func (ix *Index) extendBlock(q dna.Seq, qlo, qhi, diag int) Block {
	mm := 0
	for i := qlo; i < qhi; i++ {
		if q.At(i) != ix.ref.At(i+diag) {
			mm++
		}
	}
	// Extend left.
	run := 0
	for qlo > 0 && qlo+diag > 0 {
		if q.At(qlo-1) == ix.ref.At(qlo-1+diag) {
			run = 0
			qlo--
			continue
		}
		if run == 2 {
			break
		}
		run++
		qlo--
		mm++
	}
	mm -= run // trailing mismatches at the block edge are not included
	qlo += run
	// Extend right.
	run = 0
	for qhi < q.Len() && qhi+diag < ix.ref.Len() {
		if q.At(qhi) == ix.ref.At(qhi+diag) {
			run = 0
			qhi++
			continue
		}
		if run == 2 {
			break
		}
		run++
		qhi++
		mm++
	}
	mm -= run
	qhi -= run
	return Block{QStart: qlo, QEnd: qhi, RStart: qlo + diag, REnd: qhi + diag, Mismatches: mm}
}

// chain selects a non-overlapping (in query space) subset of blocks by
// greedy length order, then walks them in query order counting indels and
// misassembly breakpoints.
func chain(blocks []Block, qLen int, opt Options) Result {
	sort.Slice(blocks, func(a, b int) bool { return blocks[a].Len() > blocks[b].Len() })
	var picked []Block
	overlaps := func(b Block) bool {
		for _, p := range picked {
			lo, hi := max(b.QStart, p.QStart), min(b.QEnd, p.QEnd)
			if hi-lo > min(b.Len(), p.Len())/2 {
				return true
			}
		}
		return false
	}
	for _, b := range blocks {
		if !overlaps(b) {
			picked = append(picked, b)
		}
	}
	sort.Slice(picked, func(a, b int) bool { return picked[a].QStart < picked[b].QStart })

	res := Result{Blocks: picked}
	covered := 0
	prevEnd := 0
	for i, b := range picked {
		lo := b.QStart
		if lo < prevEnd {
			lo = prevEnd
		}
		if b.QEnd > lo {
			covered += b.QEnd - lo
			prevEnd = b.QEnd
		}
		res.Mismatches += b.Mismatches
		if i == 0 {
			continue
		}
		p := picked[i-1]
		if p.RC != b.RC {
			res.Breakpoints++
			continue
		}
		// Diagonal shift between consecutive blocks (oriented consistently).
		var shift int
		if b.RC {
			shift = (p.RStart + p.QStart) - (b.RStart + b.QStart)
		} else {
			shift = (b.RStart - b.QStart) - (p.RStart - p.QStart)
		}
		if shift < 0 {
			shift = -shift
		}
		switch {
		case shift == 0:
			// Same diagonal; gap between blocks is unaligned query.
		case shift <= opt.MaxIndel:
			res.Indels += shift
		case shift > opt.MisassemblyGap:
			res.Breakpoints++
		default:
			// Moderate shift: count as a large indel cluster.
			res.Indels += shift
		}
	}
	res.AlignedLen = covered
	res.UnalignedLen = qLen - covered
	return res
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
