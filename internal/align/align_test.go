package align

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ppaassembler/internal/dna"
	"ppaassembler/internal/genome"
)

func testRef(t *testing.T, n int, seed int64) dna.Seq {
	t.Helper()
	g, err := genome.Generate(genome.Spec{Name: "ref", Length: n, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestAlignExactSubstring(t *testing.T) {
	ref := testRef(t, 2000, 1)
	q := ref.Slice(300, 900)
	res := NewIndex(ref, Options{}).Align(q)
	if len(res.Blocks) != 1 {
		t.Fatalf("blocks = %d, want 1", len(res.Blocks))
	}
	b := res.Blocks[0]
	if b.QStart != 0 || b.QEnd != 600 || b.RStart != 300 || b.REnd != 900 {
		t.Errorf("block = %+v", b)
	}
	if b.RC || b.Mismatches != 0 || res.UnalignedLen != 0 || res.Breakpoints != 0 {
		t.Errorf("result = %+v", res)
	}
}

func TestAlignReverseComplement(t *testing.T) {
	ref := testRef(t, 2000, 2)
	q := ref.Slice(500, 1100).ReverseComplement()
	res := NewIndex(ref, Options{}).Align(q)
	if len(res.Blocks) != 1 || !res.Blocks[0].RC {
		t.Fatalf("blocks = %+v", res.Blocks)
	}
	if res.Blocks[0].RStart != 500 || res.Blocks[0].REnd != 1100 {
		t.Errorf("ref range = [%d,%d)", res.Blocks[0].RStart, res.Blocks[0].REnd)
	}
	if res.AlignedLen != 600 {
		t.Errorf("aligned = %d", res.AlignedLen)
	}
}

func TestAlignCountsMismatches(t *testing.T) {
	ref := testRef(t, 3000, 3)
	var b dna.Builder
	b.AppendSeq(ref.Slice(100, 700))
	q := b.Seq()
	// Introduce two isolated substitutions away from the edges.
	q = mutate(q, 150)
	q = mutate(q, 400)
	res := NewIndex(ref, Options{}).Align(q)
	if res.Mismatches != 2 {
		t.Errorf("mismatches = %d, want 2", res.Mismatches)
	}
	if res.AlignedLen < 590 {
		t.Errorf("aligned = %d, want ~600", res.AlignedLen)
	}
	if res.Breakpoints != 0 {
		t.Errorf("breakpoints = %d", res.Breakpoints)
	}
}

func mutate(s dna.Seq, i int) dna.Seq {
	var b dna.Builder
	for j := 0; j < s.Len(); j++ {
		base := s.At(j)
		if j == i {
			base = (base + 1) & 3
		}
		b.Append(base)
	}
	return b.Seq()
}

func TestAlignDetectsIndel(t *testing.T) {
	ref := testRef(t, 3000, 4)
	// Query = ref[100:400] + ref[402:700]: a 2-base deletion.
	q := ref.Slice(100, 400).Concat(ref.Slice(402, 700))
	res := NewIndex(ref, Options{}).Align(q)
	if res.Indels == 0 {
		t.Errorf("indels = 0, want ~2 (result %+v)", res)
	}
	if res.Breakpoints != 0 {
		t.Errorf("deletion misread as misassembly")
	}
}

func TestAlignDetectsMisassembly(t *testing.T) {
	ref := testRef(t, 5000, 5)
	// Chimeric contig: two distant reference segments joined.
	q := ref.Slice(100, 600).Concat(ref.Slice(3000, 3500))
	res := NewIndex(ref, Options{}).Align(q)
	if res.Breakpoints == 0 {
		t.Error("chimeric junction not reported as breakpoint")
	}
	// Strand-flip chimera.
	q2 := ref.Slice(100, 600).Concat(ref.Slice(1000, 1500).ReverseComplement())
	res2 := NewIndex(ref, Options{}).Align(q2)
	if res2.Breakpoints == 0 {
		t.Error("strand-flip junction not reported as breakpoint")
	}
}

func TestAlignUnalignedQuery(t *testing.T) {
	ref := testRef(t, 2000, 6)
	foreign := testRef(t, 400, 777) // different random sequence
	res := NewIndex(ref, Options{}).Align(foreign)
	if res.AlignedLen > 100 {
		t.Errorf("foreign sequence aligned %d bases", res.AlignedLen)
	}
	if res.UnalignedLen < 300 {
		t.Errorf("unaligned = %d", res.UnalignedLen)
	}
}

func TestAlignShortQuery(t *testing.T) {
	ref := testRef(t, 500, 7)
	res := NewIndex(ref, Options{}).Align(ref.Slice(0, 10)) // below seed length
	if len(res.Blocks) != 0 || res.UnalignedLen != 10 {
		t.Errorf("short query result %+v", res)
	}
}

func TestPropAlignRecoversRandomSlices(t *testing.T) {
	ref := testRef(t, 4000, 8)
	ix := NewIndex(ref, Options{})
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 60 + r.Intn(500)
		lo := r.Intn(ref.Len() - n)
		q := ref.Slice(lo, lo+n)
		if r.Intn(2) == 1 {
			q = q.ReverseComplement()
		}
		res := ix.Align(q)
		// The slice must align essentially fully with no breakpoints.
		return res.AlignedLen >= n-10 && res.Breakpoints == 0 && res.Mismatches == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
