// Package bench holds the benchmark harness that regenerates every table
// and figure of the paper's evaluation (§V) as testing.B benchmarks. Each
// benchmark group corresponds to one experiment of DESIGN.md's index
// (E1–E10); cmd/paperbench prints the same rows from the same code at full
// dataset scale. Benchmarks run at benchScale so `go test -bench=.`
// finishes in minutes on one core.
package bench

import (
	"sync"
	"testing"

	"ppaassembler/internal/baselines"
	"ppaassembler/internal/core"
	"ppaassembler/internal/dna"
	"ppaassembler/internal/experiments"
	"ppaassembler/internal/genome"
	"ppaassembler/internal/ppa"
	"ppaassembler/internal/pregel"
	"ppaassembler/internal/quality"
	"ppaassembler/internal/readsim"
	"ppaassembler/internal/scaffold"
)

// benchScale shrinks the DESIGN.md dataset sizes for benchmarking.
const benchScale = 0.05

var (
	dsCache   = map[string]*experiments.Dataset{}
	dsCacheMu sync.Mutex
)

func dataset(b *testing.B, name string) *experiments.Dataset {
	b.Helper()
	dsCacheMu.Lock()
	defer dsCacheMu.Unlock()
	if d, ok := dsCache[name]; ok {
		return d
	}
	d, err := experiments.LoadDataset(name, benchScale)
	if err != nil {
		b.Fatal(err)
	}
	dsCache[name] = d
	return d
}

// BenchmarkTable1_DatasetGen measures dataset generation (reference +
// simulated reads) for each Table-I stand-in (experiment E1).
func BenchmarkTable1_DatasetGen(b *testing.B) {
	for _, name := range experiments.AllDatasetNames() {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := experiments.LoadDataset(name, benchScale); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchFig12 measures end-to-end assembly per assembler per worker count
// on one dataset; the reported metric of interest is sim-seconds/op, which
// paperbench prints as the figure's series (experiments E2/E3).
func benchFig12(b *testing.B, dsName string) {
	d := dataset(b, dsName)
	asms := []baselines.Assembler{
		baselines.PPA{}, baselines.ABySS{}, baselines.Ray{}, baselines.SWAP{},
	}
	for _, a := range asms {
		for _, w := range []int{1, 4, 16} {
			b.Run(a.Name()+"/workers="+itoa(w), func(b *testing.B) {
				shards := pregel.ShardSlice(d.Reads, w)
				simTotal := 0.0
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := a.Assemble(shards, baselines.Options{
						K: experiments.K, Theta: 1, TipLen: 80, Workers: w,
					})
					if err != nil {
						b.Fatal(err)
					}
					simTotal += res.SimSeconds
				}
				b.ReportMetric(simTotal/float64(b.N), "sim-sec/op")
			})
		}
	}
}

// BenchmarkFig12a_HC14 is Figure 12(a): execution time on sim-HC14.
func BenchmarkFig12a_HC14(b *testing.B) { benchFig12(b, "sim-HC14") }

// BenchmarkFig12b_BI is Figure 12(b): execution time on sim-BI.
func BenchmarkFig12b_BI(b *testing.B) { benchFig12(b, "sim-BI") }

// benchLabeling measures one labeling run per labeler per dataset,
// reporting supersteps and messages (Tables II and III; experiments E4/E5).
func benchLabeling(b *testing.B, phase string) {
	for _, name := range experiments.AllDatasetNames() {
		d := dataset(b, name)
		for _, lab := range []core.Labeler{core.LabelerLR, core.LabelerSV} {
			b.Run(name+"/"+lab.String(), func(b *testing.B) {
				var supersteps, messages, sim float64
				for i := 0; i < b.N; i++ {
					res, err := experiments.RunPPA(d, 4, lab)
					if err != nil {
						b.Fatal(err)
					}
					st := res.KmerLabel
					if phase == "contig" {
						st = res.ContigLabel
					}
					supersteps += float64(st.Supersteps)
					messages += float64(st.Messages)
					sim += st.SimSeconds
				}
				n := float64(b.N)
				b.ReportMetric(supersteps/n, "supersteps")
				b.ReportMetric(messages/n, "messages")
				b.ReportMetric(sim/n, "sim-sec")
			})
		}
	}
}

// BenchmarkTable2_LabelKmers compares LR vs S-V for labeling unambiguous
// k-mers (Table II).
func BenchmarkTable2_LabelKmers(b *testing.B) { benchLabeling(b, "kmer") }

// BenchmarkTable3_LabelContigs compares LR vs S-V for the second labeling
// round over contigs (Table III).
func BenchmarkTable3_LabelContigs(b *testing.B) { benchLabeling(b, "contig") }

// benchQuality assembles with each assembler and evaluates QUAST-lite
// metrics, reporting N50 (Tables IV and V; experiments E6/E7).
func benchQuality(b *testing.B, dsName string) {
	d := dataset(b, dsName)
	asms := []baselines.Assembler{
		baselines.PPA{}, baselines.ABySS{}, baselines.Ray{}, baselines.SWAP{},
	}
	ref := dna.Seq{}
	if d.HasRef {
		ref = d.Ref
	}
	for _, a := range asms {
		b.Run(a.Name(), func(b *testing.B) {
			var n50, frac float64
			for i := 0; i < b.N; i++ {
				res, err := a.Assemble(pregel.ShardSlice(d.Reads, 4), baselines.Options{
					K: experiments.K, Theta: 1, TipLen: 80, Workers: 4,
				})
				if err != nil {
					b.Fatal(err)
				}
				rep := quality.Evaluate(res.Contigs, ref, quality.MinContigLen)
				n50 += float64(rep.N50)
				frac += rep.GenomeFraction
			}
			b.ReportMetric(n50/float64(b.N), "N50")
			if d.HasRef {
				b.ReportMetric(frac/float64(b.N), "genome-frac-%")
			}
		})
	}
}

// BenchmarkTable4_QualityHC2 is Table IV: quality on sim-HC2 (reference).
func BenchmarkTable4_QualityHC2(b *testing.B) { benchQuality(b, "sim-HC2") }

// BenchmarkTable5_QualityHC14 is Table V: quality on sim-HC14 (no
// reference).
func BenchmarkTable5_QualityHC14(b *testing.B) { benchQuality(b, "sim-HC14") }

// BenchmarkN50Growth measures the full pipeline and reports round-1 vs
// final N50 (the §V claim that the second merge round doubles N50;
// experiment E8).
func BenchmarkN50Growth(b *testing.B) {
	d := dataset(b, "sim-HC2")
	var r1, fin float64
	for i := 0; i < b.N; i++ {
		a, z, err := experiments.N50Growth(d, 4)
		if err != nil {
			b.Fatal(err)
		}
		r1 += float64(a)
		fin += float64(z)
	}
	b.ReportMetric(r1/float64(b.N), "N50-round1")
	b.ReportMetric(fin/float64(b.N), "N50-final")
}

// BenchmarkVertexCollapse reports the three-stage vertex-count collapse of
// §V (experiment E9).
func BenchmarkVertexCollapse(b *testing.B) {
	d := dataset(b, "sim-HC2")
	var km, mid, ctg float64
	for i := 0; i < b.N; i++ {
		a, m, c, err := experiments.VertexCollapse(d, 4)
		if err != nil {
			b.Fatal(err)
		}
		km += float64(a)
		mid += float64(m)
		ctg += float64(c)
	}
	b.ReportMetric(km/float64(b.N), "kmer-vertices")
	b.ReportMetric(mid/float64(b.N), "mid-vertices")
	b.ReportMetric(ctg/float64(b.N), "final-contigs")
}

// BenchmarkListRanking measures the Figure-1 BPPA primitive (experiment
// E10).
func BenchmarkListRanking(b *testing.B) {
	const n = 20000
	ids := make([]pregel.VertexID, n)
	vals := make([]int64, n)
	for i := range ids {
		ids[i] = pregel.VertexID(i + 1)
		vals[i] = 1
	}
	for i := 0; i < b.N; i++ {
		g, err := ppa.BuildList(pregel.Config{Workers: 4}, ids, vals)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ppa.ListRank(g); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimplifiedSV measures the Figure-2 S-V primitive on a path graph
// (experiment E10).
func BenchmarkSimplifiedSV(b *testing.B) {
	const n = 20000
	edges := make([][2]pregel.VertexID, 0, n-1)
	for i := 1; i < n; i++ {
		edges = append(edges, [2]pregel.VertexID{pregel.VertexID(i), pregel.VertexID(i + 1)})
	}
	for i := 0; i < b.N; i++ {
		g := ppa.BuildUndirected(pregel.Config{Workers: 4}, edges, nil)
		if _, err := ppa.SVComponents(g); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_Theta compares the pipeline with and without the
// (k+1)-mer coverage filter — the DBG-construction design choice of op ①.
func BenchmarkAblation_Theta(b *testing.B) {
	d := dataset(b, "sim-HC2")
	for _, theta := range []uint32{0, 1, 2} {
		b.Run("theta="+itoa(int(theta)), func(b *testing.B) {
			var n50 float64
			for i := 0; i < b.N; i++ {
				opt := core.DefaultOptions(4)
				opt.K = experiments.K
				opt.Theta = theta
				res, err := core.Assemble(pregel.ShardSlice(d.Reads, 4), opt)
				if err != nil {
					b.Fatal(err)
				}
				var lens []int
				for _, c := range res.Contigs {
					lens = append(lens, c.Len())
				}
				n50 += float64(quality.N50(lens))
			}
			b.ReportMetric(n50/float64(b.N), "N50")
		})
	}
}

// BenchmarkAblation_Rounds compares one merge round against the full
// workflow (the value of arrow ⑥).
func BenchmarkAblation_Rounds(b *testing.B) {
	d := dataset(b, "sim-HC2")
	for _, rounds := range []int{1, 2} {
		b.Run("rounds="+itoa(rounds), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opt := core.DefaultOptions(4)
				opt.K = experiments.K
				opt.Rounds = rounds
				if _, err := core.Assemble(pregel.ShardSlice(d.Reads, 4), opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDBGConstruction isolates operation ① on the largest dataset.
func BenchmarkDBGConstruction(b *testing.B) {
	d := dataset(b, "sim-BI")
	shards := pregel.ShardSlice(d.Reads, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt := core.DefaultOptions(4)
		opt.K = experiments.K
		opt.Rounds = 1
		if _, err := core.Assemble(shards, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScaffolding measures the paired-end scaffolding stage ⑦ end to
// end on a repeat-bearing genome: assembly fragments at the planted repeats
// and the scaffolder re-joins the flanks, reporting scaffold N50 alongside
// the plain contig N50 and the stage's simulated cluster time.
func BenchmarkScaffolding(b *testing.B) {
	ref, err := genome.Generate(genome.Spec{
		Name: "bench-scaffold", Length: 60_000, Repeats: 4, RepeatLen: 300, Seed: 17,
	})
	if err != nil {
		b.Fatal(err)
	}
	simPairs, err := readsim.SimulatePairs(ref, readsim.PairProfile{
		Profile:    readsim.Profile{ReadLen: 100, Coverage: 25, Seed: 18},
		InsertMean: 700, InsertSD: 60,
	})
	if err != nil {
		b.Fatal(err)
	}
	pairs := make([]scaffold.Pair, len(simPairs))
	for i, p := range simPairs {
		pairs[i] = scaffold.Pair{R1: p.R1, R2: p.R2}
	}
	reads := readsim.Interleave(simPairs)
	b.ResetTimer()
	var contigN50, scafN50, sim float64
	for i := 0; i < b.N; i++ {
		opt := core.DefaultOptions(4)
		opt.K = experiments.K
		res, err := core.Assemble(pregel.ShardSlice(reads, 4), opt)
		if err != nil {
			b.Fatal(err)
		}
		var clens []int
		for _, c := range res.Contigs {
			clens = append(clens, c.Len())
		}
		contigN50 += float64(quality.N50(clens))
		sres, contigs, err := core.ScaffoldContigs(res, opt, pairs, scaffold.Options{
			InsertMean: 700, InsertSD: 60,
		})
		if err != nil {
			b.Fatal(err)
		}
		var slens []int
		for _, s := range sres.Scaffolds {
			slens = append(slens, s.Span(contigs))
		}
		scafN50 += float64(quality.N50(slens))
		sim += sres.SimSeconds
	}
	n := float64(b.N)
	b.ReportMetric(contigN50/n, "contig-N50")
	b.ReportMetric(scafN50/n, "scaffold-N50")
	b.ReportMetric(sim/n, "scaffold-sim-sec")
}

// BenchmarkReadSimulation measures the ART-substitute throughput.
func BenchmarkReadSimulation(b *testing.B) {
	ref, err := genome.Generate(genome.Spec{Name: "bench", Length: 100_000, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := readsim.Simulate(ref, readsim.Profile{
			ReadLen: 100, Coverage: 10, SubRate: 0.005, Seed: int64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
