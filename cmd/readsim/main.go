// Command readsim generates a synthetic reference genome (or loads one from
// FASTA) and simulates short reads from it, standing in for the ART
// simulator used by the paper (Table I datasets).
//
// Usage:
//
//	readsim -len 200000 -coverage 15 -readlen 100 -ref ref.fasta -out reads.fastq
//
// With -paired the simulator draws read pairs in FR orientation with a
// normally distributed insert size (-insert, -insertsd) and writes them as
// interleaved FASTQ (pair_N/1 followed by pair_N/2), the layout
// ppa-assembler's -scaffold stage consumes.
package main

import (
	"flag"
	"fmt"
	"os"

	"ppaassembler/internal/dna"
	"ppaassembler/internal/fastx"
	"ppaassembler/internal/genome"
	"ppaassembler/internal/readsim"
)

func main() {
	var (
		length    = flag.Int("len", 200_000, "reference length when generating (ignored with -from)")
		repeats   = flag.Int("repeats", 12, "planted repeat pairs")
		repeatLen = flag.Int("repeatlen", 300, "planted repeat length")
		from      = flag.String("from", "", "load the reference from this FASTA instead of generating")
		refOut    = flag.String("ref", "", "write the reference FASTA here (optional)")
		out       = flag.String("out", "reads.fastq", "output FASTQ path (\"-\" for stdout)")
		readLen   = flag.Int("readlen", 100, "read length")
		coverage  = flag.Float64("coverage", 15, "mean per-base coverage")
		subRate   = flag.Float64("sub", 0.005, "per-base substitution error rate")
		nRate     = flag.Float64("nrate", 0.0005, "per-base N rate")
		seed      = flag.Int64("seed", 1, "random seed")
		paired    = flag.Bool("paired", false, "simulate read pairs and write interleaved FASTQ")
		insert    = flag.Float64("insert", 500, "mean insert size (with -paired)")
		insertSD  = flag.Float64("insertsd", 50, "insert-size standard deviation (with -paired)")
	)
	flag.Parse()
	if err := run(*length, *repeats, *repeatLen, *from, *refOut, *out, *readLen, *coverage, *subRate, *nRate, *seed, *paired, *insert, *insertSD); err != nil {
		fmt.Fprintln(os.Stderr, "readsim:", err)
		os.Exit(1)
	}
}

func run(length, repeats, repeatLen int, from, refOut, out string, readLen int, coverage, subRate, nRate float64, seed int64, paired bool, insert, insertSD float64) error {
	var ref dna.Seq
	if from != "" {
		f, err := os.Open(from)
		if err != nil {
			return err
		}
		recs, err := fastx.ReadFasta(f)
		f.Close()
		if err != nil {
			return err
		}
		if len(recs) == 0 {
			return fmt.Errorf("no FASTA records in %s", from)
		}
		ref = dna.ParseSeq(recs[0].Seq)
	} else {
		var err error
		ref, err = genome.Generate(genome.Spec{
			Name: "ref", Length: length, Repeats: repeats, RepeatLen: repeatLen, Seed: seed,
		})
		if err != nil {
			return err
		}
	}
	if refOut != "" {
		f, err := os.Create(refOut)
		if err != nil {
			return err
		}
		err = fastx.WriteFasta(f, []fastx.Record{{Name: "reference", Seq: ref.String()}}, 70)
		f.Close()
		if err != nil {
			return err
		}
	}
	profile := readsim.Profile{
		ReadLen: readLen, Coverage: coverage, SubRate: subRate, NRate: nRate, Seed: seed + 1,
	}
	var recs []fastx.Record
	if paired {
		pairs, err := readsim.SimulatePairs(ref, readsim.PairProfile{
			Profile: profile, InsertMean: insert, InsertSD: insertSD,
		})
		if err != nil {
			return err
		}
		recs = make([]fastx.Record, 0, 2*len(pairs))
		for i, p := range pairs {
			recs = append(recs,
				fastx.Record{Name: fmt.Sprintf("pair_%d/1", i+1), Seq: p.R1},
				fastx.Record{Name: fmt.Sprintf("pair_%d/2", i+1), Seq: p.R2})
		}
	} else {
		reads, err := readsim.Simulate(ref, profile)
		if err != nil {
			return err
		}
		recs = make([]fastx.Record, len(reads))
		for i, r := range reads {
			recs[i] = fastx.Record{Name: fmt.Sprintf("read_%d", i+1), Seq: r}
		}
	}
	w := os.Stdout
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := fastx.WriteFastq(w, recs); err != nil {
		return err
	}
	if paired {
		fmt.Fprintf(os.Stderr, "readsim: %d read pairs of 2x%d bp (%.1fx, insert %.0f±%.0f) from %d bp reference\n",
			len(recs)/2, readLen, coverage, insert, insertSD, ref.Len())
	} else {
		fmt.Fprintf(os.Stderr, "readsim: %d reads of %d bp (%.1fx) from %d bp reference\n",
			len(recs), readLen, coverage, ref.Len())
	}
	return nil
}
