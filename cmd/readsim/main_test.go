package main

import (
	"os"
	"path/filepath"
	"testing"

	"ppaassembler/internal/fastx"
)

func TestReadsimGeneratesFastqAndRef(t *testing.T) {
	dir := t.TempDir()
	refPath := filepath.Join(dir, "ref.fasta")
	outPath := filepath.Join(dir, "reads.fastq")
	if err := run(5000, 2, 100, "", refPath, outPath, 60, 8, 0.01, 0.001, 3); err != nil {
		t.Fatal(err)
	}
	rf, err := os.Open(refPath)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	refs, err := fastx.ReadFasta(rf)
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != 1 || len(refs[0].Seq) != 5000 {
		t.Fatalf("reference wrong: %d records", len(refs))
	}
	qf, err := os.Open(outPath)
	if err != nil {
		t.Fatal(err)
	}
	defer qf.Close()
	reads, err := fastx.ReadFastq(qf)
	if err != nil {
		t.Fatal(err)
	}
	want := 8 * 5000 / 60
	if len(reads) != want {
		t.Errorf("reads = %d, want %d", len(reads), want)
	}
}

func TestReadsimFromExistingReference(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "src.fasta")
	if err := os.WriteFile(src, []byte(">x\n"+stringsRepeat("ACGT", 500)+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "reads.fastq")
	if err := run(0, 0, 0, src, "", out, 50, 4, 0, 0, 1); err != nil {
		t.Fatal(err)
	}
	f, _ := os.Open(out)
	defer f.Close()
	reads, err := fastx.ReadFastq(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(reads) == 0 {
		t.Fatal("no reads")
	}
}

func TestReadsimBadProfile(t *testing.T) {
	if err := run(1000, 0, 0, "", "", filepath.Join(t.TempDir(), "r.fastq"), 0, 5, 0, 0, 1); err == nil {
		t.Fatal("zero read length accepted")
	}
}

func stringsRepeat(s string, n int) string {
	out := make([]byte, 0, len(s)*n)
	for i := 0; i < n; i++ {
		out = append(out, s...)
	}
	return string(out)
}
