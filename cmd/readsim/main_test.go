package main

import (
	"os"
	"path/filepath"
	"testing"

	"ppaassembler/internal/fastx"
)

func TestReadsimGeneratesFastqAndRef(t *testing.T) {
	dir := t.TempDir()
	refPath := filepath.Join(dir, "ref.fasta")
	outPath := filepath.Join(dir, "reads.fastq")
	if err := run(5000, 2, 100, "", refPath, outPath, 60, 8, 0.01, 0.001, 3, false, 500, 50); err != nil {
		t.Fatal(err)
	}
	rf, err := os.Open(refPath)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	refs, err := fastx.ReadFasta(rf)
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != 1 || len(refs[0].Seq) != 5000 {
		t.Fatalf("reference wrong: %d records", len(refs))
	}
	qf, err := os.Open(outPath)
	if err != nil {
		t.Fatal(err)
	}
	defer qf.Close()
	reads, err := fastx.ReadFastq(qf)
	if err != nil {
		t.Fatal(err)
	}
	want := 8 * 5000 / 60
	if len(reads) != want {
		t.Errorf("reads = %d, want %d", len(reads), want)
	}
}

func TestReadsimFromExistingReference(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "src.fasta")
	if err := os.WriteFile(src, []byte(">x\n"+stringsRepeat("ACGT", 500)+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "reads.fastq")
	if err := run(0, 0, 0, src, "", out, 50, 4, 0, 0, 1, false, 500, 50); err != nil {
		t.Fatal(err)
	}
	f, _ := os.Open(out)
	defer f.Close()
	reads, err := fastx.ReadFastq(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(reads) == 0 {
		t.Fatal("no reads")
	}
}

func TestReadsimPairedInterleaved(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "pairs.fastq")
	if err := run(8000, 0, 0, "", "", out, 60, 6, 0, 0, 2, true, 400, 40); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := fastx.ReadFastq(f)
	if err != nil {
		t.Fatal(err)
	}
	want := 6 * 8000 / (2 * 60) * 2
	if len(recs) != want {
		t.Errorf("records = %d, want %d", len(recs), want)
	}
	if len(recs)%2 != 0 {
		t.Fatal("odd record count in interleaved output")
	}
	for i := 0; i+1 < len(recs); i += 2 {
		if recs[i].Name != recs[i+1].Name[:len(recs[i+1].Name)-1]+"1" ||
			recs[i].Name[len(recs[i].Name)-2:] != "/1" || recs[i+1].Name[len(recs[i+1].Name)-2:] != "/2" {
			t.Fatalf("records %d/%d not an interleaved pair: %q %q", i, i+1, recs[i].Name, recs[i+1].Name)
		}
	}
}

func TestReadsimBadProfile(t *testing.T) {
	if err := run(1000, 0, 0, "", "", filepath.Join(t.TempDir(), "r.fastq"), 0, 5, 0, 0, 1, false, 500, 50); err == nil {
		t.Fatal("zero read length accepted")
	}
}

func stringsRepeat(s string, n int) string {
	out := make([]byte, 0, len(s)*n)
	for i := 0; i < n; i++ {
		out = append(out, s...)
	}
	return string(out)
}
