package main

import (
	"os"
	"path/filepath"
	"testing"

	"ppaassembler/internal/fastx"
	"ppaassembler/internal/genome"
)

func writeFasta(t *testing.T, path string, recs []fastx.Record) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := fastx.WriteFasta(f, recs, 70); err != nil {
		t.Fatal(err)
	}
}

func TestQuastliteRuns(t *testing.T) {
	dir := t.TempDir()
	ref, err := genome.Generate(genome.Spec{Name: "q", Length: 4000, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	refPath := filepath.Join(dir, "ref.fasta")
	ctgPath := filepath.Join(dir, "ctg.fasta")
	writeFasta(t, refPath, []fastx.Record{{Name: "ref", Seq: ref.String()}})
	writeFasta(t, ctgPath, []fastx.Record{
		{Name: "c1", Seq: ref.Slice(0, 2500).String()},
		{Name: "c2", Seq: ref.Slice(2600, 3900).String()},
	})
	if err := run(ctgPath, refPath, 500); err != nil {
		t.Fatal(err)
	}
	// Reference-free mode.
	if err := run(ctgPath, "", 500); err != nil {
		t.Fatal(err)
	}
}

func TestQuastliteMissingFiles(t *testing.T) {
	if err := run(filepath.Join(t.TempDir(), "nope.fasta"), "", 500); err == nil {
		t.Fatal("missing contigs file accepted")
	}
}
