package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ppaassembler/internal/fastx"
	"ppaassembler/internal/genome"
)

func writeFasta(t *testing.T, path string, recs []fastx.Record) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := fastx.WriteFasta(f, recs, 70); err != nil {
		t.Fatal(err)
	}
}

func TestQuastliteRuns(t *testing.T) {
	dir := t.TempDir()
	ref, err := genome.Generate(genome.Spec{Name: "q", Length: 4000, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	refPath := filepath.Join(dir, "ref.fasta")
	ctgPath := filepath.Join(dir, "ctg.fasta")
	writeFasta(t, refPath, []fastx.Record{{Name: "ref", Seq: ref.String()}})
	writeFasta(t, ctgPath, []fastx.Record{
		{Name: "c1", Seq: ref.Slice(0, 2500).String()},
		{Name: "c2", Seq: ref.Slice(2600, 3900).String()},
	})
	if err := run(ctgPath, refPath, "", 500, 100); err != nil {
		t.Fatal(err)
	}
	// Reference-free mode.
	if err := run(ctgPath, "", "", 500, 100); err != nil {
		t.Fatal(err)
	}
}

func TestQuastliteScaffoldMode(t *testing.T) {
	dir := t.TempDir()
	ref, err := genome.Generate(genome.Spec{Name: "q", Length: 5000, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	refPath := filepath.Join(dir, "ref.fasta")
	ctgPath := filepath.Join(dir, "ctg.fasta")
	scafPath := filepath.Join(dir, "scaf.fasta")
	writeFasta(t, refPath, []fastx.Record{{Name: "ref", Seq: ref.String()}})
	a, b := ref.Slice(0, 2200), ref.Slice(2400, 4600)
	writeFasta(t, ctgPath, []fastx.Record{
		{Name: "c1", Seq: a.String()}, {Name: "c2", Seq: b.String()},
	})
	writeFasta(t, scafPath, []fastx.Record{
		{Name: "scaffold_1", Seq: a.String() + strings.Repeat("N", 200) + b.String()},
	})
	if err := run(ctgPath, refPath, scafPath, 500, 100); err != nil {
		t.Fatal(err)
	}
	if err := run(ctgPath, "", scafPath, 500, 100); err != nil {
		t.Fatal(err)
	}
	if err := run(ctgPath, refPath, filepath.Join(dir, "nope.fasta"), 500, 100); err == nil {
		t.Fatal("missing scaffolds file accepted")
	}
}

func TestQuastliteMissingFiles(t *testing.T) {
	if err := run(filepath.Join(t.TempDir(), "nope.fasta"), "", "", 500, 100); err == nil {
		t.Fatal("missing contigs file accepted")
	}
}
