// Command quastlite evaluates assembled contigs in the style of QUAST [7]
// (the tool the paper uses for Tables IV and V): contig counts, N50, GC%,
// and — when a reference FASTA is supplied — genome fraction,
// misassemblies, unaligned length and mismatch/indel rates. With
// -scaffolds it additionally evaluates an N-gapped scaffold FASTA (as
// written by ppa-assembler -scaffold): scaffold N50, join/misjoin counts
// and gap-size accuracy against the reference.
//
// Usage:
//
//	quastlite -contigs contigs.fasta [-ref reference.fasta]
//	quastlite -contigs contigs.fasta -scaffolds scaffolds.fasta -ref reference.fasta [-gaptol 120]
package main

import (
	"flag"
	"fmt"
	"os"

	"ppaassembler/internal/dna"
	"ppaassembler/internal/fastx"
	"ppaassembler/internal/quality"
)

func main() {
	var (
		contigsPath   = flag.String("contigs", "", "assembled contigs FASTA (required)")
		refPath       = flag.String("ref", "", "reference FASTA (optional)")
		minLen        = flag.Int("minlen", quality.MinContigLen, "ignore contigs shorter than this")
		scaffoldsPath = flag.String("scaffolds", "", "N-gapped scaffold FASTA to evaluate (optional)")
		gapTol        = flag.Int("gaptol", 100, "gap-size tolerance in bases for scaffold evaluation")
	)
	flag.Parse()
	if *contigsPath == "" {
		fmt.Fprintln(os.Stderr, "quastlite: -contigs is required")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*contigsPath, *refPath, *scaffoldsPath, *minLen, *gapTol); err != nil {
		fmt.Fprintln(os.Stderr, "quastlite:", err)
		os.Exit(1)
	}
}

func run(contigsPath, refPath, scaffoldsPath string, minLen, gapTol int) error {
	contigs, err := readSeqs(contigsPath)
	if err != nil {
		return err
	}
	var ref dna.Seq
	if refPath != "" {
		refs, err := readSeqs(refPath)
		if err != nil {
			return err
		}
		if len(refs) == 0 {
			return fmt.Errorf("no records in %s", refPath)
		}
		ref = refs[0]
	}
	r := quality.Evaluate(contigs, ref, minLen)
	fmt.Printf("# of contigs (>= %d bp)   %d\n", minLen, r.NumContigs)
	fmt.Printf("Total length              %d\n", r.TotalLength)
	fmt.Printf("N50                       %d\n", r.N50)
	fmt.Printf("N75                       %d\n", r.N75)
	fmt.Printf("L50                       %d\n", r.L50)
	fmt.Printf("Largest contig            %d\n", r.LargestContig)
	fmt.Printf("GC (%%)                    %.2f\n", r.GCPercent)
	if r.HasReference {
		fmt.Printf("NG50                      %d\n", r.NG50)
		fmt.Printf("Genome fraction (%%)       %.3f\n", r.GenomeFraction)
		fmt.Printf("# misassemblies           %d\n", r.Misassemblies)
		fmt.Printf("Misassembled length       %d\n", r.MisassembledLength)
		fmt.Printf("Unaligned length          %d\n", r.UnalignedLength)
		fmt.Printf("# mismatches per 100 kbp  %.2f\n", r.MismatchesPer100kbp)
		fmt.Printf("# indels per 100 kbp      %.2f\n", r.IndelsPer100kbp)
		fmt.Printf("Largest alignment         %d\n", r.LargestAlignment)
	}
	if scaffoldsPath == "" {
		return nil
	}
	sr, err := evaluateScaffolds(scaffoldsPath, ref, gapTol)
	if err != nil {
		return err
	}
	fmt.Printf("\n# of scaffolds            %d\n", sr.NumScaffolds)
	fmt.Printf("Multi-contig scaffolds    %d\n", sr.MultiContig)
	fmt.Printf("Scaffold total length     %d\n", sr.TotalLength)
	fmt.Printf("Scaffold N50              %d\n", sr.ScaffoldN50)
	fmt.Printf("Largest scaffold          %d\n", sr.LargestScaffold)
	if sr.HasReference {
		fmt.Printf("# joins                   %d\n", sr.Joins)
		fmt.Printf("# misjoins                %d\n", sr.Misjoins)
		fmt.Printf("Unaligned contigs         %d\n", sr.UnalignedContigs)
		fmt.Printf("Gaps off by > %-4d bp     %d / %d\n", gapTol, sr.GapsOutOfTolerance, sr.GapsEvaluated)
		fmt.Printf("Mean abs gap error (bp)   %.1f\n", sr.MeanAbsGapError)
	}
	return nil
}

// evaluateScaffolds loads an N-gapped scaffold FASTA and scores it.
func evaluateScaffolds(path string, ref dna.Seq, gapTol int) (quality.ScaffoldReport, error) {
	f, err := fastx.Open(path)
	if err != nil {
		return quality.ScaffoldReport{}, err
	}
	defer f.Close()
	recs, err := fastx.ReadFasta(f)
	if err != nil {
		return quality.ScaffoldReport{}, err
	}
	parts := make([]quality.ScaffoldParts, len(recs))
	for i, r := range recs {
		parts[i] = quality.ParseScaffold(r.Seq)
	}
	return quality.EvaluateScaffolds(parts, ref, 0, gapTol), nil
}

func readSeqs(path string) ([]dna.Seq, error) {
	f, err := fastx.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	recs, err := fastx.ReadFasta(f)
	if err != nil {
		return nil, err
	}
	out := make([]dna.Seq, len(recs))
	for i, r := range recs {
		out[i] = dna.ParseSeq(r.Seq)
	}
	return out, nil
}
