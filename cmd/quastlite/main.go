// Command quastlite evaluates assembled contigs in the style of QUAST [7]
// (the tool the paper uses for Tables IV and V): contig counts, N50, GC%,
// and — when a reference FASTA is supplied — genome fraction,
// misassemblies, unaligned length and mismatch/indel rates.
//
// Usage:
//
//	quastlite -contigs contigs.fasta [-ref reference.fasta]
package main

import (
	"flag"
	"fmt"
	"os"

	"ppaassembler/internal/dna"
	"ppaassembler/internal/fastx"
	"ppaassembler/internal/quality"
)

func main() {
	var (
		contigsPath = flag.String("contigs", "", "assembled contigs FASTA (required)")
		refPath     = flag.String("ref", "", "reference FASTA (optional)")
		minLen      = flag.Int("minlen", quality.MinContigLen, "ignore contigs shorter than this")
	)
	flag.Parse()
	if *contigsPath == "" {
		fmt.Fprintln(os.Stderr, "quastlite: -contigs is required")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*contigsPath, *refPath, *minLen); err != nil {
		fmt.Fprintln(os.Stderr, "quastlite:", err)
		os.Exit(1)
	}
}

func run(contigsPath, refPath string, minLen int) error {
	contigs, err := readSeqs(contigsPath)
	if err != nil {
		return err
	}
	var ref dna.Seq
	if refPath != "" {
		refs, err := readSeqs(refPath)
		if err != nil {
			return err
		}
		if len(refs) == 0 {
			return fmt.Errorf("no records in %s", refPath)
		}
		ref = refs[0]
	}
	r := quality.Evaluate(contigs, ref, minLen)
	fmt.Printf("# of contigs (>= %d bp)   %d\n", minLen, r.NumContigs)
	fmt.Printf("Total length              %d\n", r.TotalLength)
	fmt.Printf("N50                       %d\n", r.N50)
	fmt.Printf("N75                       %d\n", r.N75)
	fmt.Printf("L50                       %d\n", r.L50)
	fmt.Printf("Largest contig            %d\n", r.LargestContig)
	fmt.Printf("GC (%%)                    %.2f\n", r.GCPercent)
	if r.HasReference {
		fmt.Printf("NG50                      %d\n", r.NG50)
		fmt.Printf("Genome fraction (%%)       %.3f\n", r.GenomeFraction)
		fmt.Printf("# misassemblies           %d\n", r.Misassemblies)
		fmt.Printf("Misassembled length       %d\n", r.MisassembledLength)
		fmt.Printf("Unaligned length          %d\n", r.UnalignedLength)
		fmt.Printf("# mismatches per 100 kbp  %.2f\n", r.MismatchesPer100kbp)
		fmt.Printf("# indels per 100 kbp      %.2f\n", r.IndelsPer100kbp)
		fmt.Printf("Largest alignment         %d\n", r.LargestAlignment)
	}
	return nil
}

func readSeqs(path string) ([]dna.Seq, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	recs, err := fastx.ReadFasta(f)
	if err != nil {
		return nil, err
	}
	out := make([]dna.Seq, len(recs))
	for i, r := range recs {
		out[i] = dna.ParseSeq(r.Seq)
	}
	return out, nil
}
