// Command tracecheck validates the observability artifacts emitted by
// ppa-assembler: a trace file (-trace-format jsonl or chrome) and/or a
// Prometheus-text metrics dump. It is the CI fence for the telemetry
// contract — it fails when a trace is not well-formed JSON, when begin/end
// spans are unbalanced, when a required span category is missing, or when an
// expected metric family was not exported.
//
// Usage:
//
//	tracecheck -format chrome trace.json
//	tracecheck -format jsonl -require workflow,pregel,phase,mr trace.jsonl
//	tracecheck -metrics metrics.prom
//	tracecheck -transport -format jsonl tcp-trace.jsonl -metrics tcp-metrics.prom
//	tracecheck -migration -format jsonl adaptive-trace.jsonl -metrics adaptive-metrics.prom
//
// -transport validates a run over a wire transport (-transport=tcp): the
// trace must carry the "transport" span category with connect, send, drain
// and barrier spans, and the metrics dump must export the transport byte
// counters.
//
// -migration validates an adaptive-repartitioning run (-repartition): the
// trace must carry the "migration" span category with solve spans, and the
// metrics dump must export the migration counters. Transfer spans are not
// required — a decision boundary that moves nothing emits none.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

func main() {
	format := flag.String("format", "chrome", "trace file format: chrome or jsonl")
	require := flag.String("require", "workflow,pregel,phase,mr", "comma-separated span categories that must appear in the trace")
	metricsPath := flag.String("metrics", "", "also validate this Prometheus-text metrics file")
	requireMetrics := flag.String("require-metrics", "pregel_messages_local_total,pregel_messages_remote_total,pregel_supersteps_total,workflow_ops_total", "comma-separated metric families that must appear in -metrics")
	transport := flag.Bool("transport", false, "validate a wire-transport run: require the transport span category (connect/send/drain/barrier) in the trace and the transport byte counters in -metrics")
	migration := flag.Bool("migration", false, "validate an adaptive-repartitioning run: require the migration span category (solve) in the trace and the migration counters in -metrics")
	flag.Parse()

	requireCats := splitList(*require)
	requiredMetricList := splitList(*requireMetrics)
	if *transport {
		requireCats = append(requireCats, "transport")
		requiredMetricList = append(requiredMetricList,
			"transport_bytes_sent_total", "transport_bytes_received_total",
			"transport_frames_sent_total", "transport_frames_received_total")
	}
	if *migration {
		requireCats = append(requireCats, "migration")
		requiredMetricList = append(requiredMetricList,
			"pregel_migrations_total", "pregel_migrated_vertices_total",
			"pregel_migration_bytes_total")
	}

	ok := true
	if flag.NArg() > 1 {
		fail("at most one trace file, got %d", flag.NArg())
	}
	if flag.NArg() == 1 {
		events, err := loadTrace(flag.Arg(0), *format)
		if err != nil {
			fail("%s: %v", flag.Arg(0), err)
		}
		cerr := checkEvents(events, requireCats)
		if cerr == nil && *transport {
			cerr = checkTransportSpans(events)
		}
		if cerr == nil && *migration {
			cerr = checkMigrationSpans(events)
		}
		if cerr != nil {
			fmt.Fprintf(os.Stderr, "tracecheck: %s: %v\n", flag.Arg(0), cerr)
			ok = false
		} else {
			fmt.Printf("%s: %d events OK\n", flag.Arg(0), len(events))
		}
	}
	if *metricsPath != "" {
		n, err := checkMetrics(*metricsPath, requiredMetricList)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracecheck: %s: %v\n", *metricsPath, err)
			ok = false
		} else {
			fmt.Printf("%s: %d metric families OK\n", *metricsPath, n)
		}
	}
	if flag.NArg() == 0 && *metricsPath == "" {
		fail("nothing to check; pass a trace file and/or -metrics")
	}
	if !ok {
		os.Exit(1)
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tracecheck: "+format+"\n", args...)
	os.Exit(2)
}

func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

// event is the shared shape of one trace record in either format.
type event struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Args map[string]any `json:"args"`

	// chrome only
	Ts  *float64 `json:"ts"`
	Pid *int     `json:"pid"`
	Tid *int     `json:"tid"`
	S   string   `json:"s"` // instant scope
	// jsonl only
	WallNs *int64 `json:"wall_ns"`
}

func loadTrace(path, format string) ([]event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	switch format {
	case "chrome":
		var events []event
		dec := json.NewDecoder(bufio.NewReader(f))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&events); err != nil {
			return nil, fmt.Errorf("not a JSON array of trace events: %v", err)
		}
		for i, e := range events {
			if e.Ts == nil || e.Pid == nil || e.Tid == nil {
				return nil, fmt.Errorf("event %d: missing ts/pid/tid", i)
			}
			if *e.Ts < 0 {
				return nil, fmt.Errorf("event %d: negative ts %v", i, *e.Ts)
			}
		}
		return events, nil
	case "jsonl":
		var events []event
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
		for ln := 1; sc.Scan(); ln++ {
			line := strings.TrimSpace(sc.Text())
			if line == "" {
				continue
			}
			var e event
			if err := json.Unmarshal([]byte(line), &e); err != nil {
				return nil, fmt.Errorf("line %d: %v", ln, err)
			}
			if e.WallNs == nil {
				return nil, fmt.Errorf("line %d: missing wall_ns", ln)
			}
			events = append(events, e)
		}
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return events, nil
	default:
		return nil, fmt.Errorf("unknown -format %q (want chrome or jsonl)", format)
	}
}

// checkEvents enforces the structural contract: every event is named and
// categorized, ph is B/E/i, begin/end spans balance per (cat, name), and
// every required category appears at least once.
func checkEvents(events []event, requireCats []string) error {
	if len(events) == 0 {
		return fmt.Errorf("empty trace")
	}
	open := map[string]int{}
	cats := map[string]bool{}
	for i, e := range events {
		if e.Name == "" || e.Cat == "" {
			return fmt.Errorf("event %d: missing name or cat", i)
		}
		cats[e.Cat] = true
		key := e.Cat + "/" + e.Name
		switch e.Ph {
		case "B":
			open[key]++
		case "E":
			open[key]--
			if open[key] < 0 {
				return fmt.Errorf("event %d: end without begin for %s", i, key)
			}
		case "i":
			// instants carry no balance
		default:
			return fmt.Errorf("event %d: unknown phase %q", i, e.Ph)
		}
	}
	for key, n := range open {
		if n != 0 {
			return fmt.Errorf("unbalanced span %s: %d begin(s) never ended", key, n)
		}
	}
	for _, c := range requireCats {
		if !cats[c] {
			return fmt.Errorf("required span category %q absent (saw %s)", c, strings.Join(keys(cats), ", "))
		}
	}
	return nil
}

// checkTransportSpans enforces the wire-transport span contract on top of
// the structural checks: the "transport" category must contain a connect
// span plus per-superstep send, drain and barrier spans (their begin/end
// balance is already guaranteed by checkEvents).
func checkTransportSpans(events []event) error {
	names := map[string]bool{}
	for _, e := range events {
		if e.Cat == "transport" {
			names[e.Name] = true
		}
	}
	for _, want := range []string{"connect", "send", "drain", "barrier"} {
		if !names[want] {
			return fmt.Errorf("transport span %q absent (saw %s) — was the run actually over a wire transport?",
				want, strings.Join(keys(names), ", "))
		}
	}
	return nil
}

// checkMigrationSpans enforces the adaptive-repartitioning span contract:
// the "migration" category must contain solve spans (one per decision
// boundary). Transfer spans are deliberately not required — a boundary
// whose solver proposes zero moves commits nothing and emits none.
func checkMigrationSpans(events []event) error {
	names := map[string]bool{}
	for _, e := range events {
		if e.Cat == "migration" {
			names[e.Name] = true
		}
	}
	if !names["solve"] {
		return fmt.Errorf("migration span %q absent (saw %s) — did the run enable -repartition with a cadence the superstep count reaches?",
			"solve", strings.Join(keys(names), ", "))
	}
	return nil
}

// checkMetrics validates the Prometheus text exposition shape: every sample
// belongs to a preceding # TYPE family, and the required families exist.
func checkMetrics(path string, required []string) (families int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	typed := map[string]bool{}
	var current string
	sc := bufio.NewScanner(f)
	for ln := 1; sc.Scan(); ln++ {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) != 4 {
				return 0, fmt.Errorf("line %d: malformed # TYPE line", ln)
			}
			switch fields[3] {
			case "counter", "gauge", "histogram":
			default:
				return 0, fmt.Errorf("line %d: unknown metric type %q", ln, fields[3])
			}
			current = fields[2]
			typed[current] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		if current == "" || !strings.HasPrefix(name, current) {
			return 0, fmt.Errorf("line %d: sample %q without a preceding # TYPE", ln, name)
		}
	}
	if err := sc.Err(); err != nil {
		return 0, err
	}
	for _, want := range required {
		if !typed[want] {
			return 0, fmt.Errorf("required metric family %q absent (saw %s)", want, strings.Join(keys(typed), ", "))
		}
	}
	return len(typed), nil
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
