package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestLoadTraceChrome(t *testing.T) {
	p := writeFile(t, "trace.json", `[
{"name":"job","cat":"pregel","ph":"B","ts":0.000,"pid":1,"tid":1,"args":{"sim_us":0.000}},
{"name":"fault","cat":"fault","ph":"i","ts":1.500,"s":"t","pid":1,"tid":1,"args":{"sim_us":2.000,"worker":3}},
{"name":"job","cat":"pregel","ph":"E","ts":9.000,"pid":1,"tid":1,"args":{"sim_us":12.000}}
]`)
	events, err := loadTrace(p, "chrome")
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 3 {
		t.Fatalf("got %d events", len(events))
	}
	if err := checkEvents(events, []string{"pregel", "fault"}); err != nil {
		t.Fatal(err)
	}
	if err := checkEvents(events, []string{"workflow"}); err == nil {
		t.Fatal("missing category not reported")
	}
}

func TestLoadTraceJSONL(t *testing.T) {
	p := writeFile(t, "trace.jsonl",
		`{"ph":"B","name":"op","cat":"workflow","wall_ns":100,"args":{"sim_us":0.000,"op":"build"}}
{"ph":"E","name":"op","cat":"workflow","wall_ns":200,"args":{"sim_us":5.000}}
`)
	events, err := loadTrace(p, "jsonl")
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("got %d events", len(events))
	}
	if err := checkEvents(events, []string{"workflow"}); err != nil {
		t.Fatal(err)
	}
}

func TestCheckEventsUnbalanced(t *testing.T) {
	events := []event{
		{Name: "job", Cat: "pregel", Ph: "B"},
		{Name: "job", Cat: "pregel", Ph: "B"},
		{Name: "job", Cat: "pregel", Ph: "E"},
	}
	err := checkEvents(events, nil)
	if err == nil || !strings.Contains(err.Error(), "unbalanced") {
		t.Fatalf("unbalanced spans not reported: %v", err)
	}
	if err := checkEvents([]event{{Name: "job", Cat: "p", Ph: "E"}}, nil); err == nil {
		t.Fatal("end-before-begin not reported")
	}
	if err := checkEvents([]event{{Name: "x", Cat: "c", Ph: "Q"}}, nil); err == nil {
		t.Fatal("unknown phase not reported")
	}
	if err := checkEvents(nil, nil); err == nil {
		t.Fatal("empty trace not reported")
	}
}

func TestCheckTransportSpans(t *testing.T) {
	full := []event{
		{Name: "connect", Cat: "transport", Ph: "B"}, {Name: "connect", Cat: "transport", Ph: "E"},
		{Name: "send", Cat: "transport", Ph: "B"}, {Name: "send", Cat: "transport", Ph: "E"},
		{Name: "drain", Cat: "transport", Ph: "B"}, {Name: "drain", Cat: "transport", Ph: "E"},
		{Name: "barrier", Cat: "transport", Ph: "B"}, {Name: "barrier", Cat: "transport", Ph: "E"},
	}
	if err := checkTransportSpans(full); err != nil {
		t.Fatal(err)
	}
	// A run that connected but never drained (e.g. the engine silently fell
	// back to the loopback path) must fail the contract.
	if err := checkTransportSpans(full[:2]); err == nil || !strings.Contains(err.Error(), `"send" absent`) {
		t.Fatalf("missing transport spans not reported: %v", err)
	}
	if err := checkTransportSpans(nil); err == nil {
		t.Fatal("transport-free trace not reported")
	}
}

func TestCheckTransportMetricsRequired(t *testing.T) {
	p := writeFile(t, "tcp.prom", `# TYPE transport_bytes_sent_total counter
transport_bytes_sent_total 123456
# TYPE transport_bytes_received_total counter
transport_bytes_received_total 123456
# TYPE transport_frames_sent_total counter
transport_frames_sent_total 99
# TYPE transport_frames_received_total counter
transport_frames_received_total 99
`)
	families := []string{
		"transport_bytes_sent_total", "transport_bytes_received_total",
		"transport_frames_sent_total", "transport_frames_received_total",
	}
	if _, err := checkMetrics(p, families); err != nil {
		t.Fatal(err)
	}
	memOnly := writeFile(t, "mem.prom", "# TYPE pregel_supersteps_total counter\npregel_supersteps_total 8\n")
	if _, err := checkMetrics(memOnly, families); err == nil {
		t.Fatal("missing transport counters not reported")
	}
}

func TestCheckMetrics(t *testing.T) {
	good := writeFile(t, "metrics.prom", `# TYPE pregel_messages_local_total counter
pregel_messages_local_total 15
# TYPE pregel_inbox_queue_depth histogram
pregel_inbox_queue_depth_bucket{le="1"} 1
pregel_inbox_queue_depth_bucket{le="+Inf"} 2
pregel_inbox_queue_depth_sum 11
pregel_inbox_queue_depth_count 2
`)
	n, err := checkMetrics(good, []string{"pregel_messages_local_total"})
	if err != nil || n != 2 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	if _, err := checkMetrics(good, []string{"absent_metric"}); err == nil {
		t.Fatal("missing family not reported")
	}
	orphan := writeFile(t, "orphan.prom", "some_metric 1\n")
	if _, err := checkMetrics(orphan, nil); err == nil {
		t.Fatal("sample without # TYPE not reported")
	}
	badType := writeFile(t, "badtype.prom", "# TYPE x summary\nx 1\n")
	if _, err := checkMetrics(badType, nil); err == nil {
		t.Fatal("unknown metric type not reported")
	}
}
