package main

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"ppaassembler/internal/pregel"
	"ppaassembler/internal/telemetry"
)

// observability bundles the run-wide telemetry state opened from the -trace,
// -metrics, -cpuprofile and -memprofile flags. Everything is nil/off unless
// the corresponding flag was set, so the default run pays nothing.
type observability struct {
	Tracer  telemetry.Tracer
	Metrics *telemetry.Registry

	traceSink   interface{ Close() error }
	metricsPath string
	cpuProfile  *os.File
	memPath     string
}

// openObservability validates and opens every telemetry flag before any work
// is done. The returned finish func flushes and closes everything; it must
// run even when the pipeline fails, so callers defer it immediately.
func openObservability(o cliOpts) (*observability, error) {
	obs := &observability{metricsPath: o.metricsOut, memPath: o.memProfile}
	if o.trace != "" {
		f, err := os.Create(o.trace)
		if err != nil {
			return nil, err
		}
		switch o.traceFormat {
		case "", "jsonl":
			obs.traceSink = telemetry.NewJSONLWriter(f)
		case "chrome":
			obs.traceSink = telemetry.NewChromeWriter(f)
		default:
			f.Close()
			return nil, fmt.Errorf("unknown -trace-format %q (want jsonl or chrome)", o.traceFormat)
		}
		obs.Tracer = obs.traceSink.(telemetry.Tracer)
	} else if o.traceFormat != "" {
		return nil, fmt.Errorf("-trace-format requires -trace")
	}
	if o.metricsOut != "" {
		obs.Metrics = telemetry.NewRegistry()
	}
	if o.cpuProfile != "" {
		f, err := os.Create(o.cpuProfile)
		if err != nil {
			obs.finish()
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			obs.finish()
			return nil, err
		}
		obs.cpuProfile = f
	}
	if o.cpuProfile != "" || o.memProfile != "" {
		// Label engine goroutines (job, phase, worker) only when a profile
		// is actually being collected; labels cost a map per pprof.Do.
		pregel.EnableProfLabels(true)
	}
	return obs, nil
}

// finish stops profiles and flushes the trace and metrics files. It reports
// the first error but always attempts every close.
func (obs *observability) finish() error {
	var first error
	keep := func(err error) {
		if err != nil && first == nil {
			first = err
		}
	}
	if obs.cpuProfile != nil {
		pprof.StopCPUProfile()
		keep(obs.cpuProfile.Close())
		obs.cpuProfile = nil
	}
	if obs.memPath != "" {
		f, err := os.Create(obs.memPath)
		if err != nil {
			keep(err)
		} else {
			runtime.GC() // capture a settled heap
			keep(pprof.WriteHeapProfile(f))
			keep(f.Close())
		}
		obs.memPath = ""
	}
	if obs.traceSink != nil {
		keep(obs.traceSink.Close())
		obs.traceSink = nil
	}
	if obs.Metrics != nil && obs.metricsPath != "" {
		f, err := os.Create(obs.metricsPath)
		if err != nil {
			keep(err)
		} else {
			keep(obs.Metrics.WritePrometheus(f))
			keep(f.Close())
		}
		obs.metricsPath = ""
	}
	return first
}

// printCheckpointIO appends the checkpoint I/O line to the run summary when
// any checkpoint was saved or restored.
func printCheckpointIO(saves, restores int64, written, restored int64) {
	if saves == 0 && restores == 0 {
		return
	}
	fmt.Fprintf(os.Stderr, "checkpoint I/O:    %d saves (%d bytes written), %d restores (%d bytes read)\n",
		saves, written, restores, restored)
}
