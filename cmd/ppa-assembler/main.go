// Command ppa-assembler runs the full PPA-assembler workflow ①②③④⑤⑥②③ over
// a FASTQ (or plain-text, one read per line) input and writes the assembled
// contigs as FASTA. With -scaffold it appends the paired-end scaffolding
// stage ⑦: the input is then read as interleaved pairs (R1, R2, R1, R2, ...,
// as written by readsim -paired), and ordered, oriented, N-gapped scaffolds
// are written alongside the contigs.
//
// Usage:
//
//	ppa-assembler -in reads.fastq -out contigs.fasta [flags]
//	ppa-assembler -in pairs.fastq -out contigs.fasta -scaffold scaffolds.fasta [-insert 500]
//
// Flags mirror the paper's parameters: -k (k-mer length), -theta
// ((k+1)-mer coverage threshold), -tip (tip-length threshold, paper: 80),
// -editdist (bubble edit-distance threshold, paper: 5), -workers (logical
// Pregel workers), -labeler (lr or sv), -rounds (1 or 2). FASTQ/FASTA
// inputs may be gzip-compressed (.fastq.gz, .fa.gz, ...).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"ppaassembler/internal/core"
	"ppaassembler/internal/fastx"
	"ppaassembler/internal/pregel"
	"ppaassembler/internal/scaffold"
	"ppaassembler/internal/shardio"
)

// cliOpts carries every flag so run stays testable.
type cliOpts struct {
	in, out     string
	k           int
	theta       uint32
	tip         int
	editDist    int
	workers     int
	parallel    bool
	partitioner string
	repartition string
	labeler     string
	rounds      int
	minLen      int
	gfa         string
	quiet       bool

	scaffoldOut string
	insert      float64
	insertSD    float64
	minSupport  int
	scafMinLen  int

	checkpoint string
	ckptEvery  int
	ckptDelta  bool
	ckptFsync  bool
	ckptVerify bool
	faultPlan  string
	resume     bool
	overlap    bool

	workflow string

	transport   string
	peers       string
	serveWorker int
	listen      string

	trace       string
	traceFormat string
	metricsOut  string
	cpuProfile  string
	memProfile  string
}

func main() {
	var o cliOpts
	var theta uint
	flag.StringVar(&o.in, "in", "", "input reads: FASTQ/FASTA file (optionally .gz), one-read-per-line text file, or a shardio store directory")
	flag.StringVar(&o.out, "out", "contigs.fasta", "output FASTA path (\"-\" for stdout)")
	flag.IntVar(&o.k, "k", 21, "k-mer length (odd, <= 31)")
	flag.UintVar(&theta, "theta", 1, "drop (k+1)-mers with coverage <= theta")
	flag.IntVar(&o.tip, "tip", 80, "tip-length threshold")
	flag.IntVar(&o.editDist, "editdist", 5, "bubble edit-distance threshold")
	flag.IntVar(&o.workers, "workers", 4, "logical Pregel workers")
	flag.BoolVar(&o.parallel, "parallel", false, "run workers on goroutines (multi-core; output is identical to sequential mode)")
	flag.BoolVar(&o.overlap, "overlap", false, "with -parallel, overlap message delivery with compute instead of a global barrier (output is identical either way)")
	flag.StringVar(&o.partitioner, "partitioner", "hash", "vertex placement strategy: hash (scatter), range (contiguous k-mer ID spans), minimizer (co-locate DBG-adjacent k-mers) or affinity (re-place contigs next to their graph neighborhood); output is identical for all of them, only simulated network locality changes")
	flag.StringVar(&o.repartition, "repartition", "", "online adaptive repartitioning: migrate hot vertices to the worker they receive the most traffic from, at a superstep cadence, e.g. \"4\" or \"every=4,window=2,maxmove=128\" (output is identical to static placement, only network locality changes)")
	flag.StringVar(&o.labeler, "labeler", "lr", "contig labeling algorithm: lr or sv")
	flag.IntVar(&o.rounds, "rounds", 2, "labeling+merging rounds (1 = no error correction)")
	flag.IntVar(&o.minLen, "minlen", 0, "omit contigs shorter than this from the output")
	flag.StringVar(&o.gfa, "gfa", "", "also write the assembly graph in GFA v1 to this path")
	flag.BoolVar(&o.quiet, "q", false, "suppress the run summary")
	flag.StringVar(&o.scaffoldOut, "scaffold", "", "scaffold the contigs with the (interleaved paired) input reads and write scaffold FASTA here")
	flag.Float64Var(&o.insert, "insert", 0, "paired-end mean insert size (0 = estimate from the data)")
	flag.Float64Var(&o.insertSD, "insertsd", 0, "insert-size standard deviation (0 = estimate)")
	flag.IntVar(&o.minSupport, "minsupport", 3, "minimum read pairs supporting a scaffold link")
	flag.IntVar(&o.scafMinLen, "scafminlen", 500, "exclude shorter contigs from scaffold linking")
	flag.StringVar(&o.checkpoint, "checkpoint", "", "checkpoint directory for fault tolerance (empty with -ckpt-every set = in-memory checkpoints)")
	flag.IntVar(&o.ckptEvery, "ckpt-every", 0, "checkpoint every N supersteps (0 = no checkpointing; implied 5 when -checkpoint or -faultplan is set)")
	flag.BoolVar(&o.ckptDelta, "ckpt-delta", false, "with checkpointing on, save incremental (dirty-vertex-only) checkpoints between full snapshots")
	flag.BoolVar(&o.ckptFsync, "ckpt-fsync", true, "fsync checkpoint files and their directory on every save (disable only for throwaway runs; a machine crash may then corrupt or lose checkpoints)")
	flag.BoolVar(&o.ckptVerify, "ckpt-verify", false, "verify the integrity of every artifact in -checkpoint (frame structure, v3 checksums), print a per-file report, and exit; no assembly is run")
	flag.StringVar(&o.faultPlan, "faultplan", "", "inject simulated worker crashes: comma-separated ROUND:WORKER pairs counted over all BSP rounds, e.g. \"12:0,57:3\"")
	flag.BoolVar(&o.resume, "resume", false, "resume a killed run from the checkpoints in -checkpoint")
	flag.StringVar(&o.workflow, "workflow", "", "compose the assembly as an explicit op workflow instead of the canned pipeline, e.g. \"build,label,merge,bubble,rebuild,link,tiptrim:minlen=40,label,merge,fasta\" (unset op parameters inherit the global flags)")
	flag.StringVar(&o.transport, "transport", "mem", "message transport for every superstep shuffle: mem (in-process, the default) or tcp (drain lanes over the worker processes in -peers; output is byte-identical to mem)")
	flag.StringVar(&o.peers, "peers", "", "with -transport=tcp, comma-separated worker depot addresses (host:port), one per -workers, in worker order")
	flag.IntVar(&o.serveWorker, "serve-worker", -1, "run as lane-depot process for this worker index instead of assembling (pair with -listen; the coordinator lists this address in -peers)")
	flag.StringVar(&o.listen, "listen", "127.0.0.1:0", "with -serve-worker, the address to listen on (port 0 picks an ephemeral port, printed on stdout)")
	flag.StringVar(&o.trace, "trace", "", "write a structured trace of every superstep, op, MR phase and checkpoint to this file")
	flag.StringVar(&o.traceFormat, "trace-format", "", "trace file format: jsonl (default) or chrome (load in Perfetto / chrome://tracing)")
	flag.StringVar(&o.metricsOut, "metrics", "", "write engine metrics (Prometheus text format) to this file at exit")
	flag.StringVar(&o.cpuProfile, "cpuprofile", "", "write a CPU profile to this file (engine goroutines carry job/phase/worker pprof labels)")
	flag.StringVar(&o.memProfile, "memprofile", "", "write a heap profile to this file at exit")
	flag.Parse()
	o.theta = uint32(theta)
	if o.ckptVerify {
		if o.checkpoint == "" {
			fmt.Fprintln(os.Stderr, "ppa-assembler: -ckpt-verify requires -checkpoint")
			os.Exit(2)
		}
		corrupt, err := runCkptVerify(o.checkpoint, os.Stdout)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ppa-assembler:", err)
			os.Exit(1)
		}
		if corrupt > 0 {
			os.Exit(1)
		}
		return
	}
	if o.serveWorker >= 0 {
		if err := runServeWorker(o); err != nil {
			fmt.Fprintln(os.Stderr, "ppa-assembler:", err)
			os.Exit(1)
		}
		return
	}
	if o.in == "" {
		fmt.Fprintln(os.Stderr, "ppa-assembler: -in is required")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "ppa-assembler:", err)
		os.Exit(1)
	}
}

func run(o cliOpts) error {
	// Validate flag combinations before any work is done or output written.
	if o.resume && o.checkpoint == "" {
		return fmt.Errorf("-resume requires -checkpoint (there is nothing to resume from in-memory checkpoints)")
	}
	obs, err := openObservability(o)
	if err != nil {
		return err
	}
	if o.workflow != "" {
		err = runWorkflow(o, obs)
	} else {
		err = runCanned(o, obs)
	}
	// Flush the trace/metrics/profile files even when the run failed — a
	// truncated trace of a failed run is exactly when one wants to look.
	if ferr := obs.finish(); err == nil {
		err = ferr
	}
	return err
}

func runCanned(o cliOpts, obs *observability) error {
	if o.gfa != "" && o.rounds != 2 {
		return fmt.Errorf("-gfa requires -rounds 2 (the graph is built during error correction)")
	}
	opt := core.Options{
		K:                o.k,
		Theta:            o.theta,
		TipLen:           o.tip,
		BubbleEditDist:   o.editDist,
		Workers:          o.workers,
		Parallel:         o.parallel,
		Overlap:          o.overlap,
		Rounds:           o.rounds,
		KeepGraph:        o.gfa != "",
		Resume:           o.resume,
		DeltaCheckpoints: o.ckptDelta,
		Tracer:           obs.Tracer,
		Metrics:          obs.Metrics,
	}
	var err error
	opt.CheckpointEvery, opt.Checkpointer, opt.Faults, err = faultTolerance(o)
	if err != nil {
		return err
	}
	if opt.Labeler, err = parseLabeler(o.labeler); err != nil {
		return err
	}
	if opt.Partitioner, err = core.MakePartitioner(o.partitioner, o.k); err != nil {
		return err
	}
	if opt.Repartition, err = parseRepartition(o.repartition); err != nil {
		return err
	}
	if opt.Transport, err = makeTransport(o); err != nil {
		return err
	}
	if opt.Transport != nil {
		defer opt.Transport.Close()
	}

	reads, err := loadReadList(o.in)
	if err != nil {
		return err
	}
	var pairs []scaffold.Pair
	if o.scaffoldOut != "" {
		// Pair up front so an odd read count fails before assembly.
		if pairs, err = scaffold.PairUp(reads); err != nil {
			return err
		}
	}

	res, err := core.Assemble(pregel.ShardSlice(reads, o.workers), opt)
	if err != nil {
		return err
	}

	var recs []fastx.Record
	for i, c := range res.Contigs {
		if c.Len() < o.minLen {
			continue
		}
		recs = append(recs, fastx.Record{
			Name: fmt.Sprintf("contig_%d length=%d cov=%d", i+1, c.Len(), c.Node.Cov),
			Seq:  c.Node.Seq.String(),
		})
	}
	w := os.Stdout
	if o.out != "-" {
		f, err := os.Create(o.out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := fastx.WriteFasta(w, recs, 70); err != nil {
		return err
	}
	if o.gfa != "" {
		gf, err := os.Create(o.gfa)
		if err != nil {
			return err
		}
		defer gf.Close()
		if err := core.WriteGFA(gf, res.FinalGraph, o.k); err != nil {
			return err
		}
	}
	// Scaffolding runs after the contig and GFA outputs are on disk, so a
	// scaffolding failure (e.g. no pairs to estimate the insert size from)
	// never discards the finished assembly.
	var sres *scaffold.Result
	if o.scaffoldOut != "" {
		var scontigs []scaffold.Contig
		sres, scontigs, err = core.ScaffoldContigs(res, opt, pairs, scaffold.Options{
			InsertMean: o.insert, InsertSD: o.insertSD,
			MinSupport: o.minSupport, MinContigLen: o.scafMinLen,
		})
		if err != nil {
			return err
		}
		sf, err := os.Create(o.scaffoldOut)
		if err != nil {
			return err
		}
		defer sf.Close()
		if err := fastx.WriteFasta(sf, scaffold.Records(scontigs, sres.Scaffolds), 70); err != nil {
			return err
		}
	}
	if !o.quiet {
		fmt.Fprintf(os.Stderr, "k-mer vertices:    %d\n", res.KmerVertices)
		fmt.Fprintf(os.Stderr, "(k+1)-mers kept:   %d / %d (theta=%d)\n", res.K1Kept, res.K1Distinct, o.theta)
		fmt.Fprintf(os.Stderr, "bubbles pruned:    %d\n", res.BubblesPruned)
		fmt.Fprintf(os.Stderr, "tip vertices gone: %d (+%d+%d dropped at merge)\n",
			res.TipVerticesRemoved, res.TipsDroppedAtMerge[0], res.TipsDroppedAtMerge[1])
		fmt.Fprintf(os.Stderr, "contigs written:   %d\n", len(recs))
		if sres != nil {
			multi, largest := 0, 0
			for _, s := range sres.Scaffolds {
				if s.Len() > 1 {
					multi++
				}
				if s.Len() > largest {
					largest = s.Len()
				}
			}
			fmt.Fprintf(os.Stderr, "scaffolds written: %d (%d multi-contig, largest chain %d contigs)\n",
				len(sres.Scaffolds), multi, largest)
			fmt.Fprintf(os.Stderr, "scaffold links:    %d bundles, %d kept (insert %.0f±%.0f, %d/%d pairs placed)\n",
				sres.LinkBundles, sres.LinksKept, sres.InsertMean, sres.InsertSD,
				sres.PairsPlaced, sres.PairsTotal)
			fmt.Fprintf(os.Stderr, "scaffold jobs:     %d supersteps, %d messages, %.2fs simulated\n",
				sres.Stats.Supersteps, sres.Stats.Messages, sres.SimSeconds)
		}
		if opt.Faults != nil {
			fmt.Fprintf(os.Stderr, "faults injected:   %d/%d fired, all recovered (checkpoint every %d supersteps)\n",
				opt.Faults.FiredCount(), opt.Faults.Scheduled(), opt.CheckpointEvery)
		}
		printCheckpointIO(res.CheckpointSaves, res.CheckpointRestores,
			res.CheckpointBytesWritten, res.CheckpointBytesRestored)
		printMigrationSummary(res.Migrations, res.MigratedVertices, res.MigrationBytes)
		printTransportSummary(opt.Transport)
		if total := res.LocalMessages + res.RemoteMessages; total > 0 {
			pname := o.partitioner
			if opt.Repartition != nil {
				pname = "adaptive(" + pname + ")"
			}
			fmt.Fprintf(os.Stderr, "shuffle traffic:   %d messages, %.1f%% remote (partitioner %s)\n",
				total, 100*float64(res.RemoteMessages)/float64(total), pname)
		}
		fmt.Fprintf(os.Stderr, "simulated time:    %.2fs (%d workers), wall %.2fs\n",
			res.SimSeconds, o.workers, res.WallSeconds)
	}
	return nil
}

// loadReadList accepts a FASTQ/FASTA file (by extension, optionally
// gzip-compressed), a shardio store directory, or a plain one-read-per-line
// file, and returns the reads in their on-disk order (so interleaved pairs
// stay adjacent).
func loadReadList(path string) ([]string, error) {
	st, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	if st.IsDir() {
		store, err := shardio.Open(path)
		if err != nil {
			return nil, err
		}
		shards, err := store.ReadShards(0)
		if err != nil {
			return nil, err
		}
		return pregel.Flatten(shards), nil
	}
	f, err := fastx.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	switch fastx.BaseExt(path) {
	case ".fastq", ".fq":
		recs, err := fastx.ReadFastq(f)
		if err != nil {
			return nil, err
		}
		return fastx.Seqs(recs), nil
	case ".fasta", ".fa":
		recs, err := fastx.ReadFasta(f)
		if err != nil {
			return nil, err
		}
		return fastx.Seqs(recs), nil
	default:
		data, err := io.ReadAll(f)
		if err != nil {
			return nil, err
		}
		var reads []string
		for _, line := range strings.Split(string(data), "\n") {
			line = strings.TrimSpace(line)
			if line != "" {
				reads = append(reads, line)
			}
		}
		return reads, nil
	}
}
