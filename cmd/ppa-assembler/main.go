// Command ppa-assembler runs the full PPA-assembler workflow ①②③④⑤⑥②③ over
// a FASTQ (or plain-text, one read per line) input and writes the assembled
// contigs as FASTA.
//
// Usage:
//
//	ppa-assembler -in reads.fastq -out contigs.fasta [flags]
//
// Flags mirror the paper's parameters: -k (k-mer length), -theta
// ((k+1)-mer coverage threshold), -tip (tip-length threshold, paper: 80),
// -editdist (bubble edit-distance threshold, paper: 5), -workers (logical
// Pregel workers), -labeler (lr or sv), -rounds (1 or 2).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"ppaassembler/internal/core"
	"ppaassembler/internal/fastx"
	"ppaassembler/internal/pregel"
	"ppaassembler/internal/shardio"
)

func main() {
	var (
		in       = flag.String("in", "", "input reads: FASTQ/FASTA file, one-read-per-line text file, or a shardio store directory")
		out      = flag.String("out", "contigs.fasta", "output FASTA path (\"-\" for stdout)")
		k        = flag.Int("k", 21, "k-mer length (odd, <= 31)")
		theta    = flag.Uint("theta", 1, "drop (k+1)-mers with coverage <= theta")
		tip      = flag.Int("tip", 80, "tip-length threshold")
		editDist = flag.Int("editdist", 5, "bubble edit-distance threshold")
		workers  = flag.Int("workers", 4, "logical Pregel workers")
		labeler  = flag.String("labeler", "lr", "contig labeling algorithm: lr or sv")
		rounds   = flag.Int("rounds", 2, "labeling+merging rounds (1 = no error correction)")
		minLen   = flag.Int("minlen", 0, "omit contigs shorter than this from the output")
		gfa      = flag.String("gfa", "", "also write the assembly graph in GFA v1 to this path")
		quiet    = flag.Bool("q", false, "suppress the run summary")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "ppa-assembler: -in is required")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*in, *out, *k, uint32(*theta), *tip, *editDist, *workers, *labeler, *rounds, *minLen, *gfa, *quiet); err != nil {
		fmt.Fprintln(os.Stderr, "ppa-assembler:", err)
		os.Exit(1)
	}
}

func run(in, out string, k int, theta uint32, tip, editDist, workers int, labeler string, rounds, minLen int, gfa string, quiet bool) error {
	shards, err := loadReads(in, workers)
	if err != nil {
		return err
	}
	opt := core.Options{
		K:              k,
		Theta:          theta,
		TipLen:         tip,
		BubbleEditDist: editDist,
		Workers:        workers,
		Rounds:         rounds,
		KeepGraph:      gfa != "",
	}
	switch strings.ToLower(labeler) {
	case "lr":
		opt.Labeler = core.LabelerLR
	case "sv":
		opt.Labeler = core.LabelerSV
	default:
		return fmt.Errorf("unknown labeler %q (want lr or sv)", labeler)
	}
	res, err := core.Assemble(shards, opt)
	if err != nil {
		return err
	}

	var recs []fastx.Record
	for i, c := range res.Contigs {
		if c.Len() < minLen {
			continue
		}
		recs = append(recs, fastx.Record{
			Name: fmt.Sprintf("contig_%d length=%d cov=%d", i+1, c.Len(), c.Node.Cov),
			Seq:  c.Node.Seq.String(),
		})
	}
	w := os.Stdout
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := fastx.WriteFasta(w, recs, 70); err != nil {
		return err
	}
	if gfa != "" {
		if res.FinalGraph == nil {
			return fmt.Errorf("-gfa requires -rounds 2 (the graph is built during error correction)")
		}
		gf, err := os.Create(gfa)
		if err != nil {
			return err
		}
		defer gf.Close()
		if err := core.WriteGFA(gf, res.FinalGraph, k); err != nil {
			return err
		}
	}
	if !quiet {
		fmt.Fprintf(os.Stderr, "k-mer vertices:    %d\n", res.KmerVertices)
		fmt.Fprintf(os.Stderr, "(k+1)-mers kept:   %d / %d (theta=%d)\n", res.K1Kept, res.K1Distinct, theta)
		fmt.Fprintf(os.Stderr, "bubbles pruned:    %d\n", res.BubblesPruned)
		fmt.Fprintf(os.Stderr, "tip vertices gone: %d (+%d+%d dropped at merge)\n",
			res.TipVerticesRemoved, res.TipsDroppedAtMerge[0], res.TipsDroppedAtMerge[1])
		fmt.Fprintf(os.Stderr, "contigs written:   %d\n", len(recs))
		fmt.Fprintf(os.Stderr, "simulated time:    %.2fs (%d workers), wall %.2fs\n",
			res.SimSeconds, workers, res.WallSeconds)
	}
	return nil
}

// loadReads accepts a FASTQ/FASTA file (by extension), a shardio store
// directory, or a plain one-read-per-line file.
func loadReads(path string, workers int) ([][]string, error) {
	st, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	if st.IsDir() {
		store, err := shardio.Open(path)
		if err != nil {
			return nil, err
		}
		return store.ReadShards(workers)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var reads []string
	switch strings.ToLower(filepath.Ext(path)) {
	case ".fastq", ".fq":
		recs, err := fastx.ReadFastq(f)
		if err != nil {
			return nil, err
		}
		reads = fastx.Seqs(recs)
	case ".fasta", ".fa":
		recs, err := fastx.ReadFasta(f)
		if err != nil {
			return nil, err
		}
		reads = fastx.Seqs(recs)
	default:
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		for _, line := range strings.Split(string(data), "\n") {
			line = strings.TrimSpace(line)
			if line != "" {
				reads = append(reads, line)
			}
		}
	}
	return pregel.ShardSlice(reads, workers), nil
}
