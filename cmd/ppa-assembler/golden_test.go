package main

import (
	"os"
	"path/filepath"
	"testing"

	"ppaassembler/internal/dna"
	"ppaassembler/internal/fastx"
	"ppaassembler/internal/genome"
	"ppaassembler/internal/quality"
	"ppaassembler/internal/readsim"
)

// Golden metrics for the end-to-end pipeline
// readsim -paired → ppa-assembler -scaffold → quastlite -scaffolds
// on the fixed golden genome below. The pipeline is deterministic (fixed
// seeds, deterministic engine shuffle), so these are exact equality
// assertions: any drift in assembly or scaffolding quality fails this test
// and must be either fixed or consciously re-baselined.
const (
	goldenContigN50    = 20078
	goldenNumContigs   = 6
	goldenScaffoldN50  = 39586
	goldenNumScaffolds = 5
	goldenMultiContig  = 1
	goldenJoins        = 5
	goldenMisjoins     = 0
)

// goldenPipelineFiles materializes the golden dataset exactly as
// `readsim -paired` would: a repeat-bearing reference FASTA plus an
// interleaved paired FASTQ.
func goldenPipelineFiles(t *testing.T, dir string) (refPath, readsPath string, ref dna.Seq) {
	t.Helper()
	g, err := genome.Generate(genome.Spec{
		Name: "golden", Length: 40_000, Repeats: 3, RepeatLen: 300, Seed: 1009,
	})
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := readsim.SimulatePairs(g, readsim.PairProfile{
		Profile:    readsim.Profile{ReadLen: 100, Coverage: 20, SubRate: 0.001, Seed: 1013},
		InsertMean: 650, InsertSD: 55,
	})
	if err != nil {
		t.Fatal(err)
	}
	refPath = filepath.Join(dir, "ref.fasta")
	rf, err := os.Create(refPath)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	if err := fastx.WriteFasta(rf, []fastx.Record{{Name: "golden", Seq: g.String()}}, 70); err != nil {
		t.Fatal(err)
	}
	reads := readsim.Interleave(pairs)
	readsPath = filepath.Join(dir, "pairs.fastq")
	qf, err := os.Create(readsPath)
	if err != nil {
		t.Fatal(err)
	}
	defer qf.Close()
	recs := make([]fastx.Record, len(reads))
	for i, r := range reads {
		recs[i] = fastx.Record{Name: "p", Seq: r}
	}
	if err := fastx.WriteFastq(qf, recs); err != nil {
		t.Fatal(err)
	}
	return refPath, readsPath, g
}

// TestGoldenPipelineMetrics locks the full tool chain end to end: simulated
// paired reads are assembled and scaffolded through the assembler CLI's own
// run path, then the outputs are scored through quastlite's evaluation code,
// and the resulting N50/join/misjoin metrics must equal the checked-in
// golden values.
func TestGoldenPipelineMetrics(t *testing.T) {
	dir := t.TempDir()
	_, readsPath, ref := goldenPipelineFiles(t, dir)
	contigsOut := filepath.Join(dir, "contigs.fasta")
	scaffoldsOut := filepath.Join(dir, "scaffolds.fasta")
	o := defaultOpts(readsPath, contigsOut)
	o.k = 21
	o.workers = 4
	o.scaffoldOut = scaffoldsOut
	o.insert = 650
	o.insertSD = 55
	if err := run(o); err != nil {
		t.Fatal(err)
	}

	// quastlite's contig evaluation.
	contigs := readFastaSeqs(t, contigsOut)
	rep := quality.Evaluate(contigs, ref, quality.MinContigLen)
	if rep.N50 != goldenContigN50 {
		t.Errorf("contig N50 = %d, want %d", rep.N50, goldenContigN50)
	}
	if rep.NumContigs != goldenNumContigs {
		t.Errorf("# contigs = %d, want %d", rep.NumContigs, goldenNumContigs)
	}
	if rep.Misassemblies != 0 {
		t.Errorf("# misassemblies = %d, want 0", rep.Misassemblies)
	}

	// quastlite -scaffolds evaluation.
	srecs := readFastaRecords(t, scaffoldsOut)
	parts := make([]quality.ScaffoldParts, len(srecs))
	for i, r := range srecs {
		parts[i] = quality.ParseScaffold(r.Seq)
	}
	srep := quality.EvaluateScaffolds(parts, ref, 0, 2*55)
	if srep.ScaffoldN50 != goldenScaffoldN50 {
		t.Errorf("scaffold N50 = %d, want %d", srep.ScaffoldN50, goldenScaffoldN50)
	}
	if srep.NumScaffolds != goldenNumScaffolds {
		t.Errorf("# scaffolds = %d, want %d", srep.NumScaffolds, goldenNumScaffolds)
	}
	if srep.MultiContig != goldenMultiContig {
		t.Errorf("multi-contig scaffolds = %d, want %d", srep.MultiContig, goldenMultiContig)
	}
	if srep.Joins != goldenJoins {
		t.Errorf("# joins = %d, want %d", srep.Joins, goldenJoins)
	}
	if srep.Misjoins != goldenMisjoins {
		t.Errorf("# misjoins = %d, want %d", srep.Misjoins, goldenMisjoins)
	}
	if srep.ScaffoldN50 <= rep.N50 {
		t.Errorf("scaffolding did not improve N50: scaffold %d <= contig %d", srep.ScaffoldN50, rep.N50)
	}
	t.Logf("golden pipeline: contigN50=%d numContigs=%d scaffoldN50=%d numScaffolds=%d multi=%d joins=%d misjoins=%d",
		rep.N50, rep.NumContigs, srep.ScaffoldN50, srep.NumScaffolds, srep.MultiContig, srep.Joins, srep.Misjoins)
}

// TestGoldenPipelinePartitionerIdentical re-runs the golden pipeline under
// every non-default partitioner through the CLI's own run path and demands
// byte-identical contig and scaffold FASTA against the hash default —
// locality-aware placement may only change where vertices live and what
// the wire carries, never what the assembler writes.
func TestGoldenPipelinePartitionerIdentical(t *testing.T) {
	dir := t.TempDir()
	_, readsPath, _ := goldenPipelineFiles(t, dir)
	outs := map[string][2]string{}
	for _, partitioner := range []string{"hash", "range", "minimizer", "affinity"} {
		contigsOut := filepath.Join(dir, "contigs_"+partitioner+".fasta")
		scaffoldsOut := filepath.Join(dir, "scaffolds_"+partitioner+".fasta")
		o := defaultOpts(readsPath, contigsOut)
		o.k = 21
		o.workers = 4
		o.partitioner = partitioner
		o.scaffoldOut = scaffoldsOut
		o.insert = 650
		o.insertSD = 55
		if err := run(o); err != nil {
			t.Fatal(err)
		}
		outs[partitioner] = [2]string{contigsOut, scaffoldsOut}
	}
	for partitioner, paths := range outs {
		for i, name := range []string{"contig", "scaffold"} {
			base, err := os.ReadFile(outs["hash"][i])
			if err != nil {
				t.Fatal(err)
			}
			got, err := os.ReadFile(paths[i])
			if err != nil {
				t.Fatal(err)
			}
			if string(base) != string(got) {
				t.Errorf("%s FASTA differs between -partitioner %s and hash", name, partitioner)
			}
		}
	}
}

// TestGoldenPipelineParallelIdentical re-runs the golden pipeline with
// Parallel workers and demands byte-identical output files.
func TestGoldenPipelineParallelIdentical(t *testing.T) {
	dir := t.TempDir()
	_, readsPath, _ := goldenPipelineFiles(t, dir)
	outs := map[bool][2]string{}
	for _, parallel := range []bool{false, true} {
		suffix := "seq"
		if parallel {
			suffix = "par"
		}
		contigsOut := filepath.Join(dir, "contigs_"+suffix+".fasta")
		scaffoldsOut := filepath.Join(dir, "scaffolds_"+suffix+".fasta")
		o := defaultOpts(readsPath, contigsOut)
		o.k = 21
		o.workers = 4
		o.parallel = parallel
		o.scaffoldOut = scaffoldsOut
		o.insert = 650
		o.insertSD = 55
		if err := run(o); err != nil {
			t.Fatal(err)
		}
		outs[parallel] = [2]string{contigsOut, scaffoldsOut}
	}
	for i, name := range []string{"contig", "scaffold"} {
		seqBytes, err := os.ReadFile(outs[false][i])
		if err != nil {
			t.Fatal(err)
		}
		parBytes, err := os.ReadFile(outs[true][i])
		if err != nil {
			t.Fatal(err)
		}
		if string(seqBytes) != string(parBytes) {
			t.Errorf("%s FASTA differs between -parallel and sequential runs", name)
		}
	}
}

func readFastaRecords(t *testing.T, path string) []fastx.Record {
	t.Helper()
	f, err := fastx.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := fastx.ReadFasta(f)
	if err != nil {
		t.Fatal(err)
	}
	return recs
}

func readFastaSeqs(t *testing.T, path string) []dna.Seq {
	t.Helper()
	recs := readFastaRecords(t, path)
	out := make([]dna.Seq, len(recs))
	for i, r := range recs {
		out[i] = dna.ParseSeq(r.Seq)
	}
	return out
}
