package main

import (
	"compress/gzip"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ppaassembler/internal/fastx"
	"ppaassembler/internal/genome"
	"ppaassembler/internal/quality"
	"ppaassembler/internal/readsim"
)

func writeReadsFastq(t *testing.T, dir string, reads []string) string {
	t.Helper()
	path := filepath.Join(dir, "reads.fastq")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs := make([]fastx.Record, len(reads))
	for i, r := range reads {
		recs[i] = fastx.Record{Name: "r", Seq: r}
	}
	if err := fastx.WriteFastq(f, recs); err != nil {
		t.Fatal(err)
	}
	return path
}

func defaultOpts(in, out string) cliOpts {
	return cliOpts{
		in: in, out: out, k: 15, theta: 1, tip: 80, editDist: 5,
		workers: 3, labeler: "lr", rounds: 2, quiet: true,
		insert: 0, insertSD: 0, minSupport: 3, scafMinLen: 500,
	}
}

func TestEndToEndCLI(t *testing.T) {
	dir := t.TempDir()
	ref, err := genome.Generate(genome.Spec{Name: "t", Length: 20_000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	reads, err := readsim.Simulate(ref, readsim.Profile{ReadLen: 80, Coverage: 15, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	in := writeReadsFastq(t, dir, reads)
	out := filepath.Join(dir, "contigs.fasta")
	o := defaultOpts(in, out)
	o.gfa = filepath.Join(dir, "graph.gfa")
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := fastx.ReadFasta(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("no contigs written")
	}
	total := 0
	for _, r := range recs {
		total += len(r.Seq)
		if !strings.Contains(ref.String(), r.Seq) &&
			!strings.Contains(ref.ReverseComplement().String(), r.Seq) {
			t.Errorf("contig %s is not a reference substring", r.Name)
		}
	}
	if total < 15_000 {
		t.Errorf("contigs cover %d of 20000 bases", total)
	}
	gfaData, err := os.ReadFile(o.gfa)
	if err != nil {
		t.Fatalf("GFA not written: %v", err)
	}
	if !strings.HasPrefix(string(gfaData), "H\tVN:Z:1.0") {
		t.Error("GFA header missing")
	}
}

// TestEndToEndScaffolding is the subsystem acceptance scenario: simulate
// pairs from a repeat-bearing genome, assemble (contigs break at the
// repeats), scaffold, and check that at least one multi-contig scaffold is
// produced with correctly sized gaps and zero misjoins against the known
// reference.
func TestEndToEndScaffolding(t *testing.T) {
	dir := t.TempDir()
	ref, err := genome.Generate(genome.Spec{
		Name: "t", Length: 40_000, Repeats: 3, RepeatLen: 300, Seed: 77,
	})
	if err != nil {
		t.Fatal(err)
	}
	const insertMean, insertSD = 700.0, 60.0
	pairs, err := readsim.SimulatePairs(ref, readsim.PairProfile{
		Profile:    readsim.Profile{ReadLen: 100, Coverage: 25, SubRate: 0.001, Seed: 78},
		InsertMean: insertMean, InsertSD: insertSD,
	})
	if err != nil {
		t.Fatal(err)
	}
	in := writeReadsFastq(t, dir, readsim.Interleave(pairs))
	out := filepath.Join(dir, "contigs.fasta")
	scafOut := filepath.Join(dir, "scaffolds.fasta")
	o := defaultOpts(in, out)
	o.k = 21
	o.scaffoldOut = scafOut
	if err := run(o); err != nil {
		t.Fatal(err)
	}

	sf, err := os.Open(scafOut)
	if err != nil {
		t.Fatalf("scaffold FASTA not written: %v", err)
	}
	defer sf.Close()
	recs, err := fastx.ReadFasta(sf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("no scaffolds written")
	}
	var scafs []quality.ScaffoldParts
	maxParts := 0
	for _, r := range recs {
		p := quality.ParseScaffold(r.Seq)
		scafs = append(scafs, p)
		if len(p.Contigs) > maxParts {
			maxParts = len(p.Contigs)
		}
	}
	if maxParts < 2 {
		t.Fatal("no multi-contig scaffold produced")
	}
	rep := quality.EvaluateScaffolds(scafs, ref, 0, int(2*insertSD))
	if rep.Misjoins != 0 {
		t.Errorf("misjoins = %d, want 0", rep.Misjoins)
	}
	if rep.Joins == 0 {
		t.Error("no evaluated joins")
	}
	if rep.GapsOutOfTolerance != 0 {
		t.Errorf("%d of %d gaps deviate more than 2 insert s.d. (mean abs error %.0f)",
			rep.GapsOutOfTolerance, rep.GapsEvaluated, rep.MeanAbsGapError)
	}
}

func TestCLIRejectsBadLabeler(t *testing.T) {
	dir := t.TempDir()
	in := writeReadsFastq(t, dir, []string{"ACGTACGTACGTACGT"})
	o := defaultOpts(in, "-")
	o.labeler = "bogus"
	if err := run(o); err == nil {
		t.Fatal("bogus labeler accepted")
	}
}

// TestCLIValidatesGFARoundsUpFront checks that the -gfa / -rounds conflict
// is reported before assembly runs or any output file is created.
func TestCLIValidatesGFARoundsUpFront(t *testing.T) {
	dir := t.TempDir()
	in := writeReadsFastq(t, dir, []string{"ACGTACGTACGTACGT"})
	out := filepath.Join(dir, "contigs.fasta")
	o := defaultOpts(in, out)
	o.rounds = 1
	o.gfa = filepath.Join(dir, "graph.gfa")
	if err := run(o); err == nil {
		t.Fatal("-gfa with -rounds 1 accepted")
	}
	if _, err := os.Stat(out); !os.IsNotExist(err) {
		t.Error("contigs file was written despite the flag conflict")
	}
}

func TestCLIRejectsOddPairedInput(t *testing.T) {
	dir := t.TempDir()
	in := writeReadsFastq(t, dir, []string{"ACGTACGTACGTACGT", "TTACGGACGTACGTAC", "GGACGTACGTACGTAC"})
	out := filepath.Join(dir, "contigs.fasta")
	o := defaultOpts(in, out)
	o.scaffoldOut = filepath.Join(dir, "scaffolds.fasta")
	if err := run(o); err == nil {
		t.Fatal("odd interleaved read count accepted with -scaffold")
	}
	if _, err := os.Stat(out); !os.IsNotExist(err) {
		t.Error("contigs file was written despite the pairing error")
	}
}

// TestScaffoldFailureKeepsContigs: when scaffolding fails after a
// successful assembly (here: every contig is below -scafminlen, so there is
// nothing to estimate the insert size from), the contig output must already
// be on disk.
func TestScaffoldFailureKeepsContigs(t *testing.T) {
	dir := t.TempDir()
	ref, err := genome.Generate(genome.Spec{Name: "t", Length: 15_000, Seed: 55})
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := readsim.SimulatePairs(ref, readsim.PairProfile{
		Profile:    readsim.Profile{ReadLen: 80, Coverage: 15, Seed: 56},
		InsertMean: 400, InsertSD: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	in := writeReadsFastq(t, dir, readsim.Interleave(pairs))
	out := filepath.Join(dir, "contigs.fasta")
	o := defaultOpts(in, out)
	o.scaffoldOut = filepath.Join(dir, "scaffolds.fasta")
	o.scafMinLen = 1 << 30 // exclude everything: insert estimation must fail
	if err := run(o); err == nil {
		t.Fatal("scaffolding with no linkable contigs succeeded")
	}
	if _, err := os.Stat(out); err != nil {
		t.Errorf("contigs output lost on scaffolding failure: %v", err)
	}
	if _, err := os.Stat(o.scaffoldOut); !os.IsNotExist(err) {
		t.Error("scaffold file written despite failure")
	}
}

func TestLoadReadsPlainText(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "reads.txt")
	if err := os.WriteFile(path, []byte("ACGT\n\nTTGCA\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	reads, err := loadReadList(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(reads) != 2 {
		t.Errorf("reads = %v", reads)
	}
}

func TestLoadReadsFasta(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "reads.fasta")
	if err := os.WriteFile(path, []byte(">a\nACGT\n>b\nGGTT\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	reads, err := loadReadList(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(reads) != 2 {
		t.Errorf("reads = %v", reads)
	}
}

func TestLoadReadsGzippedFastq(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "reads.fastq.gz")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	gz := gzip.NewWriter(f)
	if err := fastx.WriteFastq(gz, []fastx.Record{{Name: "a", Seq: "ACGTACGT"}, {Name: "b", Seq: "TTGGCCAA"}}); err != nil {
		t.Fatal(err)
	}
	if err := gz.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	reads, err := loadReadList(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(reads) != 2 || reads[0] != "ACGTACGT" || reads[1] != "TTGGCCAA" {
		t.Errorf("reads = %v", reads)
	}
}

func TestLoadReadsMissingFile(t *testing.T) {
	if _, err := loadReadList(filepath.Join(t.TempDir(), "nope.fastq")); err == nil {
		t.Fatal("missing file accepted")
	}
}

// TestEndToEndFaultInjection drives the new fault-tolerance flags end to
// end: the same input assembled with and without an injected mid-pipeline
// crash (checkpointing to disk) must produce byte-identical contig FASTA.
func TestEndToEndFaultInjection(t *testing.T) {
	dir := t.TempDir()
	ref, err := genome.Generate(genome.Spec{Name: "t", Length: 15_000, Seed: 91})
	if err != nil {
		t.Fatal(err)
	}
	reads, err := readsim.Simulate(ref, readsim.Profile{ReadLen: 80, Coverage: 14, Seed: 92})
	if err != nil {
		t.Fatal(err)
	}
	in := writeReadsFastq(t, dir, reads)

	clean := filepath.Join(dir, "clean.fasta")
	o := defaultOpts(in, clean)
	if err := run(o); err != nil {
		t.Fatal(err)
	}

	faulty := filepath.Join(dir, "faulty.fasta")
	o = defaultOpts(in, faulty)
	o.checkpoint = filepath.Join(dir, "ckpts")
	o.ckptEvery = 3
	o.faultPlan = "7:1,15:2"
	if err := run(o); err != nil {
		t.Fatal(err)
	}

	a, err := os.ReadFile(clean)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(faulty)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), ">") || string(a) != string(b) {
		t.Error("fault-injected run did not recover to byte-identical contigs")
	}
	entries, err := os.ReadDir(o.checkpoint)
	if err != nil || len(entries) == 0 {
		t.Errorf("no checkpoint files written to %s (err=%v)", o.checkpoint, err)
	}
}

// TestCLIRejectsResumeWithoutDir: -resume without -checkpoint is a flag
// error reported before any work is done.
func TestCLIRejectsResumeWithoutDir(t *testing.T) {
	dir := t.TempDir()
	in := writeReadsFastq(t, dir, []string{"ACGTACGTACGTACGT"})
	o := defaultOpts(in, filepath.Join(dir, "out.fasta"))
	o.resume = true
	if err := run(o); err == nil {
		t.Fatal("-resume without -checkpoint accepted")
	}
}

// TestCLIRejectsBadFaultPlan: a malformed -faultplan fails fast.
func TestCLIRejectsBadFaultPlan(t *testing.T) {
	dir := t.TempDir()
	in := writeReadsFastq(t, dir, []string{"ACGTACGTACGTACGT"})
	o := defaultOpts(in, filepath.Join(dir, "out.fasta"))
	o.faultPlan = "12-banana"
	if err := run(o); err == nil {
		t.Fatal("malformed fault plan accepted")
	}
}
