package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ppaassembler/internal/fastx"
	"ppaassembler/internal/genome"
	"ppaassembler/internal/readsim"
)

func writeReadsFastq(t *testing.T, dir string, reads []string) string {
	t.Helper()
	path := filepath.Join(dir, "reads.fastq")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs := make([]fastx.Record, len(reads))
	for i, r := range reads {
		recs[i] = fastx.Record{Name: "r", Seq: r}
	}
	if err := fastx.WriteFastq(f, recs); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestEndToEndCLI(t *testing.T) {
	dir := t.TempDir()
	ref, err := genome.Generate(genome.Spec{Name: "t", Length: 20_000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	reads, err := readsim.Simulate(ref, readsim.Profile{ReadLen: 80, Coverage: 15, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	in := writeReadsFastq(t, dir, reads)
	out := filepath.Join(dir, "contigs.fasta")
	gfaPath := filepath.Join(dir, "graph.gfa")
	if err := run(in, out, 15, 1, 80, 5, 3, "lr", 2, 0, gfaPath, true); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := fastx.ReadFasta(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("no contigs written")
	}
	total := 0
	for _, r := range recs {
		total += len(r.Seq)
		if !strings.Contains(ref.String(), r.Seq) &&
			!strings.Contains(ref.ReverseComplement().String(), r.Seq) {
			t.Errorf("contig %s is not a reference substring", r.Name)
		}
	}
	if total < 15_000 {
		t.Errorf("contigs cover %d of 20000 bases", total)
	}
	gfaData, err := os.ReadFile(gfaPath)
	if err != nil {
		t.Fatalf("GFA not written: %v", err)
	}
	if !strings.HasPrefix(string(gfaData), "H\tVN:Z:1.0") {
		t.Error("GFA header missing")
	}
}

func TestCLIRejectsBadLabeler(t *testing.T) {
	dir := t.TempDir()
	in := writeReadsFastq(t, dir, []string{"ACGTACGTACGTACGT"})
	if err := run(in, "-", 15, 1, 80, 5, 2, "bogus", 2, 0, "", true); err == nil {
		t.Fatal("bogus labeler accepted")
	}
}

func TestLoadReadsPlainText(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "reads.txt")
	if err := os.WriteFile(path, []byte("ACGT\n\nTTGCA\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	shards, err := loadReads(path, 2)
	if err != nil {
		t.Fatal(err)
	}
	var all []string
	for _, s := range shards {
		all = append(all, s...)
	}
	if len(all) != 2 {
		t.Errorf("reads = %v", all)
	}
}

func TestLoadReadsFasta(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "reads.fasta")
	if err := os.WriteFile(path, []byte(">a\nACGT\n>b\nGGTT\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	shards, err := loadReads(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(shards[0]) != 2 {
		t.Errorf("reads = %v", shards)
	}
}

func TestLoadReadsMissingFile(t *testing.T) {
	if _, err := loadReads(filepath.Join(t.TempDir(), "nope.fastq"), 1); err == nil {
		t.Fatal("missing file accepted")
	}
}
