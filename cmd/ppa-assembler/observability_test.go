package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestTraceRunByteIdentical is the acceptance check for the telemetry seam:
// running the golden pipeline with full observability switched on (chrome
// trace, metrics dump, checkpointing every 5 supersteps) must write
// byte-identical contig and scaffold FASTA to a plain run, and the trace
// must be valid Perfetto-loadable JSON containing spans for every layer —
// workflow ops, pregel jobs and supersteps, compute/shuffle/barrier
// sub-phases, MR phases and checkpoint saves.
func TestTraceRunByteIdentical(t *testing.T) {
	dir := t.TempDir()
	_, readsPath, _ := goldenPipelineFiles(t, dir)

	runOnce := func(suffix string, observe bool) (contigs, scaffolds []byte) {
		o := defaultOpts(readsPath, filepath.Join(dir, "contigs_"+suffix+".fasta"))
		o.k = 21
		o.workers = 4
		o.scaffoldOut = filepath.Join(dir, "scaffolds_"+suffix+".fasta")
		o.insert = 650
		o.insertSD = 55
		if observe {
			o.trace = filepath.Join(dir, "trace.json")
			o.traceFormat = "chrome"
			o.metricsOut = filepath.Join(dir, "metrics.prom")
			o.ckptEvery = 5
		}
		if err := run(o); err != nil {
			t.Fatal(err)
		}
		c, err := os.ReadFile(o.out)
		if err != nil {
			t.Fatal(err)
		}
		s, err := os.ReadFile(o.scaffoldOut)
		if err != nil {
			t.Fatal(err)
		}
		return c, s
	}

	plainC, plainS := runOnce("plain", false)
	tracedC, tracedS := runOnce("traced", true)
	if !bytes.Equal(plainC, tracedC) {
		t.Errorf("contig FASTA differs between plain and traced runs")
	}
	if !bytes.Equal(plainS, tracedS) {
		t.Errorf("scaffold FASTA differs between plain and traced runs")
	}

	// The chrome trace must parse as a complete JSON array with the full
	// span taxonomy present and begin/end balanced.
	raw, err := os.ReadFile(filepath.Join(dir, "trace.json"))
	if err != nil {
		t.Fatal(err)
	}
	var events []struct {
		Name string  `json:"name"`
		Cat  string  `json:"cat"`
		Ph   string  `json:"ph"`
		Ts   float64 `json:"ts"`
	}
	if err := json.Unmarshal(raw, &events); err != nil {
		t.Fatalf("trace is not a JSON array: %v", err)
	}
	cats := map[string]bool{}
	open := map[string]int{}
	for i, e := range events {
		cats[e.Cat] = true
		if e.Ts < 0 {
			t.Fatalf("event %d: negative ts", i)
		}
		switch e.Ph {
		case "B":
			open[e.Cat+"/"+e.Name]++
		case "E":
			open[e.Cat+"/"+e.Name]--
		}
	}
	for _, want := range []string{"workflow", "pregel", "phase", "mr", "checkpoint"} {
		if !cats[want] {
			t.Errorf("trace has no %q spans", want)
		}
	}
	for key, n := range open {
		if n != 0 {
			t.Errorf("unbalanced span %s: %d left open", key, n)
		}
	}

	// The metrics dump must carry the engine's counter families.
	prom, err := os.ReadFile(filepath.Join(dir, "metrics.prom"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# TYPE pregel_messages_local_total counter",
		"# TYPE pregel_messages_remote_total counter",
		"# TYPE pregel_supersteps_total counter",
		"# TYPE pregel_checkpoint_saves_total counter",
		"# TYPE workflow_ops_total counter",
		"# TYPE pregel_inbox_queue_depth histogram",
	} {
		if !strings.Contains(string(prom), want) {
			t.Errorf("metrics dump missing %q:\n%s", want, prom)
		}
	}
}

// TestTraceJSONLFormat exercises the -trace-format=jsonl path: every line
// must parse as a standalone JSON object with the documented fields.
func TestTraceJSONLFormat(t *testing.T) {
	dir := t.TempDir()
	_, readsPath, _ := goldenPipelineFiles(t, dir)
	o := defaultOpts(readsPath, filepath.Join(dir, "contigs.fasta"))
	o.k = 21
	o.workers = 4
	o.trace = filepath.Join(dir, "trace.jsonl")
	o.traceFormat = "jsonl"
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(o.trace)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) < 10 {
		t.Fatalf("suspiciously short trace: %d lines", len(lines))
	}
	for i, line := range lines {
		var e struct {
			Ph     string          `json:"ph"`
			Name   string          `json:"name"`
			Cat    string          `json:"cat"`
			WallNs int64           `json:"wall_ns"`
			Args   json.RawMessage `json:"args"`
		}
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("line %d does not parse: %v\n%s", i+1, err, line)
		}
		if e.Ph == "" || e.Name == "" || e.Cat == "" || e.WallNs == 0 || len(e.Args) == 0 {
			t.Fatalf("line %d missing fields: %s", i+1, line)
		}
	}
}

// TestProfilingFlags exercises -cpuprofile/-memprofile: both files must be
// written and non-empty, and the flags must not perturb the run.
func TestProfilingFlags(t *testing.T) {
	dir := t.TempDir()
	_, readsPath, _ := goldenPipelineFiles(t, dir)
	o := defaultOpts(readsPath, filepath.Join(dir, "contigs.fasta"))
	o.k = 21
	o.workers = 4
	o.parallel = true // exercise the per-goroutine label path too
	o.cpuProfile = filepath.Join(dir, "cpu.pprof")
	o.memProfile = filepath.Join(dir, "mem.pprof")
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{o.cpuProfile, o.memProfile} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		if st.Size() == 0 {
			t.Errorf("%s is empty", p)
		}
	}
}

// TestObservabilityFlagValidation locks the flag-combination errors.
func TestObservabilityFlagValidation(t *testing.T) {
	dir := t.TempDir()
	o := defaultOpts("nonexistent.fastq", filepath.Join(dir, "out.fasta"))
	o.traceFormat = "chrome" // without -trace
	if err := run(o); err == nil || !strings.Contains(err.Error(), "-trace-format requires -trace") {
		t.Errorf("-trace-format without -trace: err = %v", err)
	}
	o = defaultOpts("nonexistent.fastq", filepath.Join(dir, "out.fasta"))
	o.trace = filepath.Join(dir, "t.json")
	o.traceFormat = "perfetto"
	if err := run(o); err == nil || !strings.Contains(err.Error(), "unknown -trace-format") {
		t.Errorf("bad -trace-format: err = %v", err)
	}
}
