package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ppaassembler/internal/genome"
	"ppaassembler/internal/readsim"
)

// cannedSpec is the -workflow spelling of the stock two-round pipeline
// (the op parameters inherit the global flags, exactly as run() sets them).
const cannedSpec = "build,label,merge,bubble,rebuild,link,tiptrim,label,merge,fasta"

func workflowTestReads(t *testing.T, dir string) string {
	t.Helper()
	ref, err := genome.Generate(genome.Spec{
		Name: "wf", Length: 14_000, Repeats: 2, RepeatLen: 250, Seed: 203,
	})
	if err != nil {
		t.Fatal(err)
	}
	reads, err := readsim.Simulate(ref, readsim.Profile{
		ReadLen: 100, Coverage: 14, SubRate: 0.002, Seed: 204,
	})
	if err != nil {
		t.Fatal(err)
	}
	return writeReadsFastq(t, dir, reads)
}

func readFile(t *testing.T, path string) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestWorkflowSpecMatchesCannedPipeline: composing the stock pipeline as a
// -workflow spec must write byte-identical contig FASTA to the canned
// core.Assemble path.
func TestWorkflowSpecMatchesCannedPipeline(t *testing.T) {
	dir := t.TempDir()
	in := workflowTestReads(t, dir)

	cannedOut := filepath.Join(dir, "canned.fasta")
	if err := run(defaultOpts(in, cannedOut)); err != nil {
		t.Fatal(err)
	}

	wfOut := filepath.Join(dir, "wf.fasta")
	o := defaultOpts(in, wfOut)
	o.workflow = cannedSpec
	if err := run(o); err != nil {
		t.Fatal(err)
	}

	canned, wf := readFile(t, cannedOut), readFile(t, wfOut)
	if len(canned) == 0 {
		t.Fatal("canned pipeline wrote no contigs")
	}
	if string(canned) != string(wf) {
		t.Error("-workflow composition of the stock pipeline differs from core.Assemble output")
	}
}

// TestWorkflowScaffoldMatchesCannedPipeline runs the paired golden dataset
// through a -workflow spec ending in scaffold and demands byte-identical
// contig and scaffold FASTA against the canned -scaffold path.
func TestWorkflowScaffoldMatchesCannedPipeline(t *testing.T) {
	dir := t.TempDir()
	_, readsPath, _ := goldenPipelineFiles(t, dir)

	canned := defaultOpts(readsPath, filepath.Join(dir, "c.fasta"))
	canned.k = 21
	canned.workers = 4
	canned.scaffoldOut = filepath.Join(dir, "c_scaf.fasta")
	canned.insert, canned.insertSD = 650, 55
	if err := run(canned); err != nil {
		t.Fatal(err)
	}

	wf := defaultOpts(readsPath, filepath.Join(dir, "w.fasta"))
	wf.k = 21
	wf.workers = 4
	wf.scaffoldOut = filepath.Join(dir, "w_scaf.fasta")
	wf.insert, wf.insertSD = 650, 55
	wf.workflow = cannedSpec + ",scaffold"
	if err := run(wf); err != nil {
		t.Fatal(err)
	}

	if string(readFile(t, canned.out)) != string(readFile(t, wf.out)) {
		t.Error("workflow contig FASTA differs from canned pipeline")
	}
	if string(readFile(t, canned.scaffoldOut)) != string(readFile(t, wf.scaffoldOut)) {
		t.Error("workflow scaffold FASTA differs from canned pipeline")
	}
}

// TestWorkflowStagedSeamMatchesInMemory: inserting a shardio staging seam
// between ops must not change the assembly output byte-for-byte.
func TestWorkflowStagedSeamMatchesInMemory(t *testing.T) {
	dir := t.TempDir()
	in := workflowTestReads(t, dir)

	memOut := filepath.Join(dir, "mem.fasta")
	o := defaultOpts(in, memOut)
	o.workflow = cannedSpec
	if err := run(o); err != nil {
		t.Fatal(err)
	}

	stagedOut := filepath.Join(dir, "staged.fasta")
	o = defaultOpts(in, stagedOut)
	o.workflow = "build,stage:dir=" + filepath.Join(dir, "seam1") +
		",label,merge,bubble,rebuild,stage:dir=" + filepath.Join(dir, "seam2") +
		",link,tiptrim,label,merge,fasta"
	if err := run(o); err != nil {
		t.Fatal(err)
	}

	if string(readFile(t, memOut)) != string(readFile(t, stagedOut)) {
		t.Error("shardio-staged plan differs from its all-in-memory twin")
	}
	// The explicit seam directories must hold real part-files.
	for _, seam := range []string{"seam1", "seam2"} {
		if _, err := os.Stat(filepath.Join(dir, seam, "segments", "part-00000")); err != nil {
			t.Errorf("staging seam %s left no part-files: %v", seam, err)
		}
	}
}

// TestWorkflowKillAndResume is the process-level recovery contract through
// a user-composed plan: a first -workflow run leaves its checkpoints in a
// directory; a second process-equivalent run with -resume fast-forwards
// from them and must write byte-identical FASTA. A fault-injected run over
// the same plan must also recover to identical output.
func TestWorkflowKillAndResume(t *testing.T) {
	dir := t.TempDir()
	in := workflowTestReads(t, dir)

	// Baseline, no fault tolerance.
	baseOut := filepath.Join(dir, "base.fasta")
	o := defaultOpts(in, baseOut)
	o.workflow = cannedSpec
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	base := readFile(t, baseOut)

	// First checkpointed run ("the killed process", completing its work —
	// the worst case for resume: every job replays from its last cadence
	// checkpoint).
	ckptDir := filepath.Join(dir, "ckpt")
	firstOut := filepath.Join(dir, "first.fasta")
	o = defaultOpts(in, firstOut)
	o.workflow = cannedSpec
	o.checkpoint = ckptDir
	o.ckptEvery = 3
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	if string(readFile(t, firstOut)) != string(base) {
		t.Fatal("checkpointed workflow run differs from baseline")
	}

	// Resumed process over the same spec and checkpoint directory.
	resumedOut := filepath.Join(dir, "resumed.fasta")
	o = defaultOpts(in, resumedOut)
	o.workflow = cannedSpec
	o.checkpoint = ckptDir
	o.ckptEvery = 3
	o.resume = true
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	if string(readFile(t, resumedOut)) != string(base) {
		t.Error("resumed workflow run differs from baseline")
	}

	// Crash injection mid-plan with in-memory checkpoints.
	crashOut := filepath.Join(dir, "crash.fasta")
	o = defaultOpts(in, crashOut)
	o.workflow = cannedSpec
	o.ckptEvery = 3
	o.faultPlan = "9:1"
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	if string(readFile(t, crashOut)) != string(base) {
		t.Error("fault-injected workflow run differs from baseline")
	}
}

// TestWorkflowKillAndResumeNonDefaultPartitioner is the recovery contract
// under a non-default placement: a checkpointed -workflow run under the
// minimizer partitioner resumes byte-identically, and a resume attempt
// under a different partitioner is rejected with an error naming the
// mismatch instead of silently scattering partition-local state.
func TestWorkflowKillAndResumeNonDefaultPartitioner(t *testing.T) {
	dir := t.TempDir()
	in := workflowTestReads(t, dir)

	baseOut := filepath.Join(dir, "base.fasta")
	o := defaultOpts(in, baseOut)
	o.workflow = cannedSpec
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	base := readFile(t, baseOut)

	ckptDir := filepath.Join(dir, "ckpt")
	firstOut := filepath.Join(dir, "first.fasta")
	o = defaultOpts(in, firstOut)
	o.workflow = cannedSpec
	o.partitioner = "minimizer"
	o.checkpoint = ckptDir
	o.ckptEvery = 3
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	if string(readFile(t, firstOut)) != string(base) {
		t.Fatal("minimizer-partitioned workflow run differs from hash baseline")
	}

	// Resume under the same placement fast-forwards to identical output.
	resumedOut := filepath.Join(dir, "resumed.fasta")
	o = defaultOpts(in, resumedOut)
	o.workflow = cannedSpec
	o.partitioner = "minimizer"
	o.checkpoint = ckptDir
	o.ckptEvery = 3
	o.resume = true
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	if string(readFile(t, resumedOut)) != string(base) {
		t.Error("resumed minimizer workflow run differs from baseline")
	}

	// Resume under a different placement must fail loudly.
	o = defaultOpts(in, filepath.Join(dir, "wrong.fasta"))
	o.workflow = cannedSpec
	o.partitioner = "range"
	o.checkpoint = ckptDir
	o.ckptEvery = 3
	o.resume = true
	err := run(o)
	if err == nil {
		t.Fatal("resume under a different partitioner succeeded")
	}
	if !strings.Contains(err.Error(), `partitioner "minimizer"`) || !strings.Contains(err.Error(), `"range"`) {
		t.Errorf("error %q does not name the partitioner mismatch", err)
	}
}

// TestPartitionerFlagRejected: an unknown -partitioner fails before any
// assembly, in both the canned and -workflow paths, and the partition
// spec op validates its scheme at parse time.
func TestPartitionerFlagRejected(t *testing.T) {
	dir := t.TempDir()
	in := writeReadsFastq(t, dir, []string{"ACGTACGTACGTACGTACGTACGT"})
	for _, mutate := range []func(*cliOpts){
		func(o *cliOpts) { o.partitioner = "frobnicate" },
		func(o *cliOpts) { o.partitioner = "frobnicate"; o.workflow = cannedSpec },
		func(o *cliOpts) { o.workflow = "partition:scheme=frobnicate," + cannedSpec },
	} {
		o := defaultOpts(in, filepath.Join(dir, "x.fasta"))
		mutate(&o)
		err := run(o)
		if err == nil || !strings.Contains(err.Error(), "frobnicate") {
			t.Errorf("partitioner %q workflow %q: expected unknown-partitioner error, got %v", o.partitioner, o.workflow, err)
		}
	}
	// A partition op mid-spec is accepted and applies to later graphs.
	o := defaultOpts(in, filepath.Join(dir, "y.fasta"))
	o.workflow = "partition:scheme=range:k=15," + cannedSpec
	if err := run(o); err != nil {
		t.Errorf("partition spec op rejected: %v", err)
	}
	// A k-mer-aware -partitioner sized by -k must be rejected when the
	// spec builds with a different k (the placement would silently
	// degenerate) — unless a partition op in the spec supersedes the flag.
	o = defaultOpts(in, filepath.Join(dir, "z.fasta"))
	o.partitioner = "range"
	o.workflow = "build:k=11," + "label,merge,fasta"
	err := run(o)
	if err == nil || !strings.Contains(err.Error(), "k=11") {
		t.Errorf("k-mismatched -partitioner range accepted: %v", err)
	}
	o = defaultOpts(in, filepath.Join(dir, "w.fasta"))
	o.partitioner = "range"
	o.workflow = "partition:scheme=range:k=11,build:k=11,label,merge,fasta"
	if err := run(o); err != nil {
		t.Errorf("spec-sized partition op rejected: %v", err)
	}
}

// TestWorkflowSpecRejected covers the fail-early paths: type errors,
// unknown ops, and flag combinations are reported before any assembly.
func TestWorkflowSpecRejected(t *testing.T) {
	dir := t.TempDir()
	in := writeReadsFastq(t, dir, []string{"ACGTACGTACGTACGTACGTACGT"})
	out := filepath.Join(dir, "x.fasta")

	cases := []struct {
		mutate func(*cliOpts)
		want   string
	}{
		{func(o *cliOpts) { o.workflow = "build,merge,fasta" }, `needs "labels"`},
		// A rebuilt mixed graph is inoperable until link restores its
		// adjacency; skipping link must be a type error, not silent damage.
		{func(o *cliOpts) { o.workflow = "build,label,merge,rebuild,tiptrim,label,merge,fasta" }, `needs "graph"`},
		{func(o *cliOpts) { o.workflow = "build,link,fasta" }, `needs "mixed"`},
		{func(o *cliOpts) { o.workflow = "stage,build,label,merge,fasta" }, "needs one of"},
		{func(o *cliOpts) { o.workflow = cannedSpec; o.rounds = 1 }, "-rounds is ignored"},
		{func(o *cliOpts) {
			o.workflow = "build,label,merge,fasta"
			o.scaffoldOut = "nowhere.fasta"
		}, "no scaffold op"},
		{func(o *cliOpts) { o.workflow = "frobnicate" }, "unknown op"},
		{func(o *cliOpts) { o.workflow = "build,label,merge" }, "writes no output"},
		{func(o *cliOpts) { o.workflow = cannedSpec + ",scaffold" }, "-scaffold gives no output path"},
		{func(o *cliOpts) { o.workflow = cannedSpec; o.gfa = filepath.Join(dir, "g.gfa") }, "-gfa is not supported"},
		{func(o *cliOpts) { o.workflow = "build:k=banana,label,merge,fasta" }, "want an integer"},
	}
	for _, c := range cases {
		o := defaultOpts(in, out)
		c.mutate(&o)
		err := run(o)
		if err == nil {
			t.Errorf("workflow %q accepted", o.workflow)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("workflow %q: error %q does not contain %q", o.workflow, err, c.want)
		}
	}
}
