package main

import (
	"fmt"
	"io"

	"ppaassembler/internal/pregel"
)

// runCkptVerify scrubs the checkpoint directory (-ckpt-verify mode): every
// artifact is decoded and checksum-verified, a per-file report is written
// to w, and the number of corrupt files is returned. It never modifies the
// directory — the operator decides whether to restore, delete, or let a
// resumed run walk back past the damage.
func runCkptVerify(dir string, w io.Writer) (corrupt int, err error) {
	rep, err := pregel.VerifyCheckpointDir(dir)
	if err != nil {
		return 0, err
	}
	if len(rep.Files) == 0 {
		fmt.Fprintf(w, "%s: no checkpoint artifacts\n", dir)
		return 0, nil
	}
	for _, f := range rep.Files {
		switch {
		case f.Temp:
			fmt.Fprintf(w, "TEMP    %-40s %s\n", f.Name, f.Err)
		case f.Err != nil:
			corrupt++
			fmt.Fprintf(w, "CORRUPT %-40s v%d %7dB: %v\n", f.Name, f.Version, f.Bytes, f.Err)
		default:
			kind := "full "
			if f.Delta {
				kind = "delta"
			}
			fmt.Fprintf(w, "OK      %-40s v%d %7dB %s job=%s step=%d sections=%d\n",
				f.Name, f.Version, f.Bytes, kind, f.Job, f.Step, len(f.SectionEnds)-1)
		}
	}
	total := 0
	for _, f := range rep.Files {
		if !f.Temp {
			total++
		}
	}
	fmt.Fprintf(w, "%s: %d artifacts, %d corrupt\n", dir, total, corrupt)
	return corrupt, nil
}
