package main

import (
	"fmt"
	"os"
	"strings"

	"ppaassembler/internal/transport"
)

// makeTransport maps the -transport/-peers flags onto a transport for the
// engine. "mem" (the default) returns nil: the engine keeps its historical
// in-process loopback shuffle and checkpoints record transport "mem" either
// way. "tcp" builds the coordinator side of the multi-process transport,
// one peer address per logical worker.
func makeTransport(o cliOpts) (transport.Transport, error) {
	switch strings.ToLower(o.transport) {
	case "", "mem":
		if o.peers != "" {
			return nil, fmt.Errorf("-peers is only meaningful with -transport=tcp")
		}
		return nil, nil
	case "tcp":
		if o.peers == "" {
			return nil, fmt.Errorf("-transport=tcp requires -peers (comma-separated worker addresses, one per worker)")
		}
		var peers []string
		for _, p := range strings.Split(o.peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peers = append(peers, p)
			}
		}
		if len(peers) != o.workers {
			return nil, fmt.Errorf("-peers lists %d worker addresses, but -workers is %d; every logical worker needs its own depot process", len(peers), o.workers)
		}
		return transport.DialTCP(transport.TCPOptions{Peers: peers})
	default:
		return nil, fmt.Errorf("unknown transport %q (want mem or tcp)", o.transport)
	}
}

// runServeWorker is the worker-process mode: the process becomes lane depot
// number -serve-worker, listening on -listen until killed. It holds no
// compute and no graph state; the coordinator (a ppa-assembler run with
// -transport=tcp) stores outgoing lanes here and drains them back each
// superstep. The bound address is printed to stdout so scripts using an
// ephemeral port (-listen 127.0.0.1:0) can collect it for -peers.
func runServeWorker(o cliOpts) error {
	srv := &transport.WorkerServer{Worker: o.serveWorker}
	if !o.quiet {
		srv.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "ppa-assembler: "+format+"\n", args...)
		}
	}
	addr, err := srv.Listen(o.listen)
	if err != nil {
		return err
	}
	fmt.Printf("worker %d listening on %s\n", o.serveWorker, addr)
	return srv.Serve()
}

// printTransportSummary reports the wire traffic of a run over a non-nil
// transport, in the style of the run summary's other lines.
func printTransportSummary(tp transport.Transport) {
	if tp == nil {
		return
	}
	c := tp.Counters()
	fmt.Fprintf(os.Stderr, "transport %-8s %d frames / %s sent, %d frames / %s received, %d barriers, wire %.2fs",
		tp.Name()+":", c.FramesSent, sizeOf(c.BytesSent), c.FramesRecv, sizeOf(c.BytesRecv),
		c.Barriers, float64(c.WireNs)/1e9)
	if c.Redials > 0 {
		fmt.Fprintf(os.Stderr, ", %d redials", c.Redials)
	}
	fmt.Fprintln(os.Stderr)
}

// sizeOf renders a byte count with a binary unit.
func sizeOf(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}
