package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ppaassembler/internal/pregel"
)

// TestRunCkptVerify drives the -ckpt-verify engine over a real checkpoint
// directory: a clean scrub reports every artifact OK, and after truncating
// one file the scrub flags exactly that file as corrupt.
func TestRunCkptVerify(t *testing.T) {
	dir := t.TempDir()
	store, err := pregel.NewDirCheckpointer(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := pregel.Config{Workers: 2, CheckpointEvery: 2, Checkpointer: store}
	g := pregel.NewGraph[int64, int64](cfg)
	for i := 0; i < 16; i++ {
		g.AddVertex(pregel.VertexID(i), int64(i))
	}
	if _, err := g.Run(func(ctx *pregel.Context[int64], id pregel.VertexID, v *int64, msgs []int64) {
		for _, m := range msgs {
			*v += m
		}
		if ctx.Superstep() >= 5 {
			ctx.VoteToHalt()
			return
		}
		ctx.Send(pregel.VertexID((uint64(id)+1)%16), *v)
	}, pregel.WithName("verify")); err != nil {
		t.Fatal(err)
	}

	var clean strings.Builder
	n, err := runCkptVerify(dir, &clean)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("clean directory reported %d corrupt files:\n%s", n, clean.String())
	}
	if !strings.Contains(clean.String(), "OK") || !strings.Contains(clean.String(), "0 corrupt") {
		t.Errorf("clean report lacks OK lines or summary:\n%s", clean.String())
	}

	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) == 0 {
		t.Fatalf("checkpoint dir: %v, %d entries", err, len(entries))
	}
	victim := filepath.Join(dir, entries[0].Name())
	st, err := os.Stat(victim)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(victim, st.Size()-5); err != nil {
		t.Fatal(err)
	}

	var bad strings.Builder
	n, err = runCkptVerify(dir, &bad)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("truncated directory reported %d corrupt files, want 1:\n%s", n, bad.String())
	}
	if !strings.Contains(bad.String(), "CORRUPT "+entries[0].Name()) &&
		!strings.Contains(bad.String(), entries[0].Name()) {
		t.Errorf("report does not flag the damaged file %s:\n%s", entries[0].Name(), bad.String())
	}

	var empty strings.Builder
	if n, err = runCkptVerify(t.TempDir(), &empty); err != nil || n != 0 {
		t.Fatalf("empty directory: n=%d err=%v", n, err)
	}
	if !strings.Contains(empty.String(), "no checkpoint artifacts") {
		t.Errorf("empty-directory report: %q", empty.String())
	}
}
