package main

import (
	"fmt"
	"os"
	"strconv"
	"strings"

	"ppaassembler/internal/core"
	"ppaassembler/internal/fastx"
	"ppaassembler/internal/pregel"
	"ppaassembler/internal/scaffold"
	"ppaassembler/internal/workflow"
)

// parseLabeler maps the -labeler flag to a core.Labeler.
func parseLabeler(s string) (core.Labeler, error) {
	switch strings.ToLower(s) {
	case "lr":
		return core.LabelerLR, nil
	case "sv":
		return core.LabelerSV, nil
	default:
		return 0, fmt.Errorf("unknown labeler %q (want lr or sv)", s)
	}
}

// parseRepartition maps the -repartition flag to an engine policy: empty
// disables, a bare number is the cadence, and "every=N,window=N,maxmove=N"
// spells everything out.
func parseRepartition(s string) (*pregel.RepartitionPolicy, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	pol := &pregel.RepartitionPolicy{}
	if n, err := strconv.Atoi(s); err == nil {
		pol.Every = n
	} else {
		for _, kv := range strings.Split(s, ",") {
			key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
			if !ok {
				return nil, fmt.Errorf("-repartition %q: want a cadence number or key=value pairs (every=, window=, maxmove=)", s)
			}
			n, err := strconv.Atoi(strings.TrimSpace(val))
			if err != nil {
				return nil, fmt.Errorf("-repartition: parameter %s=%q is not a number", key, val)
			}
			switch strings.TrimSpace(key) {
			case "every":
				pol.Every = n
			case "window":
				pol.Window = n
			case "maxmove":
				pol.MaxMoves = n
			default:
				return nil, fmt.Errorf("-repartition: unknown parameter %q (want every, window or maxmove)", key)
			}
		}
	}
	if err := (pregel.Config{Workers: 1, Repartition: pol}).Validate(); err != nil {
		return nil, err
	}
	return pol, nil
}

// printMigrationSummary reports committed live migrations, if any ran.
func printMigrationSummary(migrations, vertices, bytes int64) {
	if migrations == 0 {
		return
	}
	fmt.Fprintf(os.Stderr, "live migration:    %d decisions moved %d vertices (%d bytes relocated)\n",
		migrations, vertices, bytes)
}

// faultTolerance assembles the checkpoint/fault-injection settings shared
// by the canned pipeline and -workflow paths: a checkpoint directory or a
// fault plan implies checkpointing even without an explicit cadence.
func faultTolerance(o cliOpts) (every int, store pregel.Checkpointer, faults *pregel.FaultPlan, err error) {
	every = o.ckptEvery
	if every <= 0 && (o.checkpoint != "" || o.faultPlan != "") {
		every = 5
	}
	if o.checkpoint != "" {
		durability := pregel.DurabilityFull
		if !o.ckptFsync {
			durability = pregel.DurabilityNone
		}
		store, err = pregel.NewDirCheckpointerOpts(o.checkpoint, pregel.DirStoreOptions{Durability: durability})
		if err != nil {
			return 0, nil, nil, err
		}
	}
	if o.faultPlan != "" {
		if faults, err = pregel.ParseFaultPlan(o.faultPlan); err != nil {
			return 0, nil, nil, err
		}
	}
	return every, store, faults, nil
}

// runWorkflow executes a user-composed -workflow spec: the global flags
// become the spec's parameter defaults, the plan is type-checked before any
// input is read, and the fasta/scaffold artifacts it produces are written
// to -out and -scaffold.
func runWorkflow(o cliOpts, obs *observability) error {
	if o.gfa != "" {
		return fmt.Errorf("-gfa is not supported with -workflow (the canned pipeline tracks the final graph)")
	}
	if o.rounds != 2 {
		return fmt.Errorf("-rounds is ignored with -workflow; compose the rounds in the spec instead")
	}
	labeler, err := parseLabeler(o.labeler)
	if err != nil {
		return err
	}
	def := core.OpDefaults{
		K:              o.k,
		Theta:          o.theta,
		TipLen:         o.tip,
		BubbleEditDist: o.editDist,
		Labeler:        labeler,
		MinLen:         o.minLen,
		Scaffold: scaffold.Options{
			InsertMean: o.insert, InsertSD: o.insertSD,
			MinSupport: o.minSupport, MinContigLen: o.scafMinLen,
		},
	}
	plan, err := workflow.Parse(core.OpRegistry(def), o.workflow, core.ArtReads, core.ArtPairs)
	if err != nil {
		return err
	}
	wantsScaffolds := plan.Provides(core.ArtScaffolds)
	wantsFasta := plan.Provides(core.ArtFasta)
	if !wantsFasta && !wantsScaffolds {
		return fmt.Errorf("workflow %q writes no output; append a fasta or scaffold op", o.workflow)
	}
	if wantsScaffolds && o.scaffoldOut == "" {
		return fmt.Errorf("workflow %q scaffolds, but -scaffold gives no output path", o.workflow)
	}
	if !wantsScaffolds && o.scaffoldOut != "" {
		return fmt.Errorf("-scaffold %s is set, but workflow %q has no scaffold op", o.scaffoldOut, o.workflow)
	}

	every, store, faults, err := faultTolerance(o)
	if err != nil {
		return err
	}
	part, err := core.MakePartitioner(o.partitioner, o.k)
	if err != nil {
		return err
	}
	repart, err := parseRepartition(o.repartition)
	if err != nil {
		return err
	}
	// The k-mer-aware strategies (range, minimizer) are sized by -k, but a
	// spec may override k on its build op; a mismatch would silently
	// degenerate the placement (e.g. a 2·21-bit range over 15-mer IDs puts
	// every vertex on worker 0) and make the locality numbers meaningless.
	// A partition op earlier in the spec supersedes the flag, so only the
	// flag-sized frame is checked.
	if o.partitioner != "" && o.partitioner != "hash" {
		for _, op := range plan.Ops() {
			if _, ok := op.(core.PartitionOp); ok {
				break
			}
			if b, ok := op.(core.BuildDBGOp); ok && b.K != o.k {
				return fmt.Errorf("-partitioner %s is sized for -k %d, but the workflow builds with k=%d; size it in the spec instead (e.g. \"partition:scheme=%s:k=%d,%s\") or align -k",
					o.partitioner, o.k, b.K, o.partitioner, b.K, o.workflow)
			}
		}
	}
	tp, err := makeTransport(o)
	if err != nil {
		return err
	}
	if tp != nil {
		defer tp.Close()
	}
	env := &workflow.Env{
		Workers: o.workers, Parallel: o.parallel, Overlap: o.overlap,
		Partitioner: part, Transport: tp, MessageBytes: core.MsgWireBytes,
		Repartition:     repart,
		CheckpointEvery: every, Checkpointer: store,
		DeltaCheckpoints: o.ckptDelta,
		Faults:           faults, Resume: o.resume,
		Tracer: obs.Tracer, Metrics: obs.Metrics,
	}

	reads, err := loadReadList(o.in)
	if err != nil {
		return err
	}
	st := &core.State{Reads: pregel.ShardSlice(reads, o.workers)}
	if wantsScaffolds {
		// Pair up front so an odd read count fails before assembly.
		if st.Pairs, err = scaffold.PairUp(reads); err != nil {
			return err
		}
	}
	if err := plan.Run(env, st); err != nil {
		return err
	}

	if wantsFasta {
		w := os.Stdout
		if o.out != "-" {
			f, err := os.Create(o.out)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		if err := fastx.WriteFasta(w, st.Fasta, 70); err != nil {
			return err
		}
	}
	if wantsScaffolds {
		sf, err := os.Create(o.scaffoldOut)
		if err != nil {
			return err
		}
		defer sf.Close()
		if err := fastx.WriteFasta(sf, scaffold.Records(st.ScaffoldContigs, st.Scaffold.Scaffolds), 70); err != nil {
			return err
		}
	}
	if !o.quiet {
		printWorkflowSummary(o, plan.String(), env, st, wantsFasta)
	}
	return nil
}

// printWorkflowSummary reports the run in the shape of the canned
// pipeline's summary, driven by whichever metrics the composed ops filled.
func printWorkflowSummary(o cliOpts, spec string, env *workflow.Env, st *core.State, wroteFasta bool) {
	m := &st.Metrics
	fmt.Fprintf(os.Stderr, "workflow:          %s\n", spec)
	if m.KmerVertices > 0 {
		fmt.Fprintf(os.Stderr, "k-mer vertices:    %d\n", m.KmerVertices)
		// The spec may override -theta per op, so the flag value is not
		// reported here.
		fmt.Fprintf(os.Stderr, "(k+1)-mers kept:   %d / %d\n", m.K1Kept, m.K1Distinct)
	}
	if m.BubblesPruned > 0 {
		fmt.Fprintf(os.Stderr, "bubbles pruned:    %d\n", m.BubblesPruned)
	}
	if m.TipVerticesRemoved > 0 || len(m.MergeDroppedTips) > 0 {
		fmt.Fprintf(os.Stderr, "tip vertices gone: %d (merge-time drops %v)\n",
			m.TipVerticesRemoved, m.MergeDroppedTips)
	}
	if m.BranchesCut > 0 {
		fmt.Fprintf(os.Stderr, "branches cut:      %d\n", m.BranchesCut)
	}
	if wroteFasta {
		fmt.Fprintf(os.Stderr, "contigs written:   %d\n", len(st.Fasta))
	}
	if sres := st.Scaffold; sres != nil {
		multi, largest := 0, 0
		for _, s := range sres.Scaffolds {
			if s.Len() > 1 {
				multi++
			}
			if s.Len() > largest {
				largest = s.Len()
			}
		}
		fmt.Fprintf(os.Stderr, "scaffolds written: %d (%d multi-contig, largest chain %d contigs)\n",
			len(sres.Scaffolds), multi, largest)
	}
	if env.Faults != nil {
		fmt.Fprintf(os.Stderr, "faults injected:   %d/%d fired, all recovered (checkpoint every %d supersteps)\n",
			env.Faults.FiredCount(), env.Faults.Scheduled(), env.CheckpointEvery)
	}
	printCheckpointIO(env.Clock.CheckpointSaves(), env.Clock.CheckpointRestores(),
		env.Clock.CheckpointBytesWritten(), env.Clock.CheckpointBytesRestored())
	printMigrationSummary(env.Clock.Migrations(), env.Clock.MigratedVertices(), env.Clock.MigrationBytes())
	printTransportSummary(env.Transport)
	if total := env.Clock.LocalMessages() + env.Clock.RemoteMessages(); total > 0 {
		fmt.Fprintf(os.Stderr, "shuffle traffic:   %d messages, %.1f%% remote (partitioner %s)\n",
			total, 100*float64(env.Clock.RemoteMessages())/float64(total), env.Partitioner.Name())
	}
	fmt.Fprintf(os.Stderr, "simulated time:    %.2fs (%d workers)\n", env.Clock.Seconds(), env.Workers)
}
