package main

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"ppaassembler/internal/transport"
)

// startDepots runs n in-process lane depots (the same transport.WorkerServer
// the -serve-worker mode runs) on ephemeral localhost ports and returns
// their addresses joined for -peers.
func startDepots(t *testing.T, n int) string {
	t.Helper()
	addrs := make([]string, n)
	for i := range n {
		srv := &transport.WorkerServer{Worker: i}
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = addr
		go srv.Serve()
		t.Cleanup(func() { srv.Close() })
	}
	return strings.Join(addrs, ",")
}

func TestMakeTransportFlagValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		o    cliOpts
		want string
	}{
		{"peers without tcp", cliOpts{transport: "mem", peers: "127.0.0.1:1", workers: 1}, "-transport=tcp"},
		{"tcp without peers", cliOpts{transport: "tcp", workers: 2}, "requires -peers"},
		{"peer count mismatch", cliOpts{transport: "tcp", peers: "a:1,b:2", workers: 3}, "but -workers is 3"},
		{"unknown transport", cliOpts{transport: "udp", workers: 1}, "unknown transport"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, err := makeTransport(tc.o)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("makeTransport = %v, want error containing %q", err, tc.want)
			}
		})
	}
	tp, err := makeTransport(cliOpts{transport: "tcp", peers: "127.0.0.1:1, 127.0.0.1:2", workers: 2})
	if err != nil {
		t.Fatalf("valid tcp opts rejected: %v", err)
	}
	tp.Close()
	if tp.Name() != "tcp" || tp.Workers() != 2 {
		t.Fatalf("got transport %s/%d workers, want tcp/2", tp.Name(), tp.Workers())
	}
}

// TestGoldenPipelineTCPIdentical is the tentpole acceptance test at the CLI
// level: the golden pipeline (assembly + scaffolding) must write
// byte-identical contig and scaffold FASTA whether the superstep shuffle
// stays in process or crosses real TCP depot processes, across every
// partitioner and worker counts {1, 4, 7}. The reference for each worker
// count is the in-memory run at that count (the contig set legitimately
// depends on the shard split, so there is one reference per count, and the
// transport must never move the output off it; partitioner invariance at a
// fixed count is locked separately by TestGoldenPipelinePartitionerIdentical).
func TestGoldenPipelineTCPIdentical(t *testing.T) {
	dir := t.TempDir()
	_, readsPath, _ := goldenPipelineFiles(t, dir)

	runOnce := func(label, partitioner string, workers int, transportName, peers string) (contigs, scaffolds []byte) {
		t.Helper()
		contigsOut := filepath.Join(dir, "contigs_"+label+".fasta")
		scaffoldsOut := filepath.Join(dir, "scaffolds_"+label+".fasta")
		o := defaultOpts(readsPath, contigsOut)
		o.k = 21
		o.workers = workers
		o.partitioner = partitioner
		o.transport = transportName
		o.peers = peers
		o.scaffoldOut = scaffoldsOut
		o.insert = 650
		o.insertSD = 55
		if err := run(o); err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		cb, err := os.ReadFile(contigsOut)
		if err != nil {
			t.Fatal(err)
		}
		sb, err := os.ReadFile(scaffoldsOut)
		if err != nil {
			t.Fatal(err)
		}
		return cb, sb
	}

	partitioners := []string{"hash", "range", "minimizer", "affinity"}
	workerCounts := []int{1, 4, 7}
	if testing.Short() {
		partitioners = []string{"hash", "minimizer"}
		workerCounts = []int{1, 4}
	}
	for _, workers := range workerCounts {
		refContigs, refScaffolds := runOnce(fmt.Sprintf("mem_%d", workers), "hash", workers, "mem", "")
		for _, partitioner := range partitioners {
			label := fmt.Sprintf("tcp_%s_%d", partitioner, workers)
			t.Run(label, func(t *testing.T) {
				peers := startDepots(t, workers)
				contigs, scaffolds := runOnce(label, partitioner, workers, "tcp", peers)
				if string(contigs) != string(refContigs) {
					t.Errorf("contig FASTA differs from the in-memory reference")
				}
				if string(scaffolds) != string(refScaffolds) {
					t.Errorf("scaffold FASTA differs from the in-memory reference")
				}
			})
		}
	}
}

// Env gates for the re-exec'd depot helper process below.
const (
	envWorkerHelper    = "PPA_TEST_WORKER_HELPER"
	envWorkerIndex     = "PPA_TEST_WORKER_INDEX"
	envWorkerListen    = "PPA_TEST_WORKER_LISTEN"
	envWorkerExitAfter = "PPA_TEST_WORKER_EXIT_AFTER"
)

// TestHelperWorkerProcess is not a test: it is the body of the worker OS
// processes spawned by TestGoldenPipelineTCPWorkerKilled, re-exec'ing the
// test binary. It serves a lane depot until killed — or, with
// PPA_TEST_WORKER_EXIT_AFTER set, exits the whole process after that many
// frames, exactly like a crashing worker machine.
func TestHelperWorkerProcess(t *testing.T) {
	if os.Getenv(envWorkerHelper) != "1" {
		t.Skip("helper process body, not a test")
	}
	idx, _ := strconv.Atoi(os.Getenv(envWorkerIndex))
	exitAfter, _ := strconv.Atoi(os.Getenv(envWorkerExitAfter))
	srv := &transport.WorkerServer{
		Worker:          idx,
		ExitAfterFrames: exitAfter,
		Exit:            os.Exit,
	}
	addr, err := srv.Listen(os.Getenv(envWorkerListen))
	if err != nil {
		fmt.Println("listen error:", err)
		os.Exit(2)
	}
	fmt.Printf("worker %d listening on %s\n", idx, addr)
	srv.Serve()
	os.Exit(0)
}

// spawnWorkerProcess re-execs the test binary as a depot OS process and
// returns the command plus the address it bound.
func spawnWorkerProcess(t *testing.T, idx int, listen string, exitAfter int) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=TestHelperWorkerProcess", "-test.v")
	cmd.Env = append(os.Environ(),
		envWorkerHelper+"=1",
		fmt.Sprintf("%s=%d", envWorkerIndex, idx),
		envWorkerListen+"="+listen,
		fmt.Sprintf("%s=%d", envWorkerExitAfter, exitAfter),
	)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		line := sc.Text()
		if i := strings.Index(line, "listening on "); i >= 0 {
			addr := strings.TrimSpace(line[i+len("listening on "):])
			go func() { // drain the rest so the child never blocks on stdout
				for sc.Scan() {
				}
			}()
			return cmd, addr
		}
	}
	cmd.Process.Kill()
	cmd.Wait()
	t.Fatalf("worker %d never reported its address", idx)
	return nil, ""
}

// TestGoldenPipelineTCPWorkerKilled is the kill-and-resume acceptance pass:
// worker depots are real OS processes, one of them exits mid-run (crash
// hook after a fixed frame count), a watchdog restarts it on the same port,
// and the run must complete through checkpoint rollback with output
// byte-identical to an undisturbed in-memory run.
func TestGoldenPipelineTCPWorkerKilled(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns OS processes")
	}
	dir := t.TempDir()
	_, readsPath, _ := goldenPipelineFiles(t, dir)
	const workers = 3

	// Reference: undisturbed in-memory run.
	refOut := filepath.Join(dir, "contigs_ref.fasta")
	o := defaultOpts(readsPath, refOut)
	o.k = 21
	o.workers = workers
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	ref, err := os.ReadFile(refOut)
	if err != nil {
		t.Fatal(err)
	}

	// Three depot OS processes; worker 1 crashes after 150 frames.
	addrs := make([]string, workers)
	cmds := make([]*exec.Cmd, workers)
	for i := range workers {
		exitAfter := 0
		if i == 1 {
			exitAfter = 150
		}
		cmds[i], addrs[i] = spawnWorkerProcess(t, i, "127.0.0.1:0", exitAfter)
	}
	t.Cleanup(func() {
		for _, cmd := range cmds {
			if cmd != nil && cmd.Process != nil {
				cmd.Process.Kill()
				cmd.Wait()
			}
		}
	})

	// Watchdog: when the doomed worker dies, restart it on the same port
	// (now with no crash hook), the way an operator or supervisor would.
	restarted := make(chan struct{})
	go func() {
		defer close(restarted)
		cmds[1].Wait()
		t.Logf("worker 1 process exited, restarting on %s", addrs[1])
		var addr string
		cmds[1], addr = spawnWorkerProcess(t, 1, addrs[1], 0)
		if addr != addrs[1] {
			t.Errorf("restarted worker bound %s, want %s", addr, addrs[1])
		}
	}()

	out := filepath.Join(dir, "contigs_tcp.fasta")
	o = defaultOpts(readsPath, out)
	o.k = 21
	o.workers = workers
	o.transport = "tcp"
	o.peers = strings.Join(addrs, ",")
	o.checkpoint = filepath.Join(dir, "ckpt")
	o.ckptEvery = 3
	if err := run(o); err != nil {
		t.Fatalf("tcp run with killed worker failed: %v", err)
	}

	select {
	case <-restarted:
	case <-time.After(30 * time.Second):
		t.Fatal("worker 1 was never killed: the crash hook did not fire, so the run proved nothing")
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(ref) {
		t.Error("contig FASTA after worker kill + rollback differs from the undisturbed reference")
	}
}

// TestResumeTransportMismatchCLI drives the satellite check end to end
// through the CLI's own run path: a checkpointed TCP run, then -resume with
// the default in-memory transport, must fail naming both transports.
func TestResumeTransportMismatchCLI(t *testing.T) {
	dir := t.TempDir()
	_, readsPath, _ := goldenPipelineFiles(t, dir)
	peers := startDepots(t, 3)

	ckpt := filepath.Join(dir, "ckpt")
	o := defaultOpts(readsPath, filepath.Join(dir, "contigs_tcp.fasta"))
	o.k = 21
	o.workers = 3
	o.transport = "tcp"
	o.peers = peers
	o.checkpoint = ckpt
	o.ckptEvery = 3
	if err := run(o); err != nil {
		t.Fatal(err)
	}

	o2 := defaultOpts(readsPath, filepath.Join(dir, "contigs_mem.fasta"))
	o2.k = 21
	o2.workers = 3
	o2.checkpoint = ckpt
	o2.ckptEvery = 3
	o2.resume = true
	err := run(o2)
	if err == nil {
		t.Fatal("-resume under a different transport succeeded, want a loud failure")
	}
	for _, want := range []string{`transport "tcp"`, `transport "mem"`, "-transport=tcp"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("resume error %q does not mention %q", err, want)
		}
	}
}
