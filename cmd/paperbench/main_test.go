package main

import "testing"

// TestEveryExperimentRunsAtTinyScale smoke-tests each experiment id end to
// end (scale 0.01 keeps the whole sweep under a minute).
func TestEveryExperimentRunsAtTinyScale(t *testing.T) {
	for _, exp := range []string{
		"table1", "table4", "n50growth", "vertexcollapse",
	} {
		if err := run(exp, 0.01, 2); err != nil {
			t.Errorf("experiment %s: %v", exp, err)
		}
	}
}

func TestUnknownExperimentRejected(t *testing.T) {
	if err := run("bogus", 1, 2); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}
