// Command paperbench regenerates every table and figure of the paper's
// evaluation (§V) on the synthetic stand-in datasets. See EXPERIMENTS.md
// for the paper-vs-measured record produced by this tool.
//
// Usage:
//
//	paperbench                  # run everything at the default scale
//	paperbench -exp=fig12a      # one experiment
//	paperbench -scale=0.25      # smaller datasets (faster)
//
// Experiments: table1, fig12a, fig12b, table2, table3, table4, table5,
// n50growth, vertexcollapse, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ppaassembler/internal/experiments"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment to run")
		scale   = flag.Float64("scale", 1.0, "dataset scale factor (1.0 = DESIGN.md sizes)")
		workers = flag.Int("workers", 4, "worker count for the non-scaling experiments")
	)
	flag.Parse()
	if err := run(strings.ToLower(*exp), *scale, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "paperbench:", err)
		os.Exit(1)
	}
}

func run(exp string, scale float64, workers int) error {
	all := exp == "all"
	out := os.Stdout
	hr := func(title string) { fmt.Fprintf(out, "\n=== %s ===\n", title) }

	if all || exp == "table1" {
		hr("Table I: datasets")
		if err := experiments.Table1(out, scale); err != nil {
			return err
		}
	}
	workerSweep := []int{1, 2, 4, 8, 16}
	if all || exp == "fig12a" {
		hr("Figure 12(a): execution time vs workers, sim-HC14 (simulated seconds)")
		d, err := experiments.LoadDataset("sim-HC14", scale)
		if err != nil {
			return err
		}
		rows, err := experiments.Fig12(d, workerSweep)
		if err != nil {
			return err
		}
		experiments.PrintFig12(out, "# workers", workerSweep, rows)
	}
	if all || exp == "fig12b" {
		hr("Figure 12(b): execution time vs workers, sim-BI (simulated seconds)")
		d, err := experiments.LoadDataset("sim-BI", scale)
		if err != nil {
			return err
		}
		rows, err := experiments.Fig12(d, workerSweep)
		if err != nil {
			return err
		}
		experiments.PrintFig12(out, "# workers", workerSweep, rows)
	}
	if all || exp == "table2" || exp == "table3" {
		var t2, t3 []experiments.LabelRow
		for _, name := range experiments.AllDatasetNames() {
			d, err := experiments.LoadDataset(name, scale)
			if err != nil {
				return err
			}
			if all || exp == "table2" {
				row, err := experiments.LabelComparison(d, workers, "kmer")
				if err != nil {
					return err
				}
				t2 = append(t2, row)
			}
			if all || exp == "table3" {
				row, err := experiments.LabelComparison(d, workers, "contig")
				if err != nil {
					return err
				}
				t3 = append(t3, row)
			}
		}
		if len(t2) > 0 {
			hr("Table II: LR vs S-V for labeling unambiguous k-mers")
			experiments.PrintLabelTable(out, "", t2)
		}
		if len(t3) > 0 {
			hr("Table III: LR vs S-V for labeling contigs")
			experiments.PrintLabelTable(out, "", t3)
		}
	}
	if all || exp == "table4" {
		hr("Table IV: quality comparison on sim-HC2 (with reference)")
		d, err := experiments.LoadDataset("sim-HC2", scale)
		if err != nil {
			return err
		}
		rows, err := experiments.QualityComparison(d, workers)
		if err != nil {
			return err
		}
		experiments.PrintQualityTable(out, "", rows)
	}
	if all || exp == "table5" {
		hr("Table V: quality comparison on sim-HC14 (no reference)")
		d, err := experiments.LoadDataset("sim-HC14", scale)
		if err != nil {
			return err
		}
		rows, err := experiments.QualityComparison(d, workers)
		if err != nil {
			return err
		}
		experiments.PrintQualityTable(out, "", rows)
	}
	if all || exp == "n50growth" {
		hr("§V: N50 growth from the second merge round (paper: 1074 -> 2070)")
		d, err := experiments.LoadDataset("sim-HC2", scale)
		if err != nil {
			return err
		}
		r1, final, err := experiments.N50Growth(d, workers)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "N50 after round-1 merge: %d\nN50 after full workflow: %d (x%.2f)\n",
			r1, final, float64(final)/float64(max(r1, 1)))
	}
	if all || exp == "vertexcollapse" {
		hr("§V: vertex-count collapse (paper: 46.97M -> 1.00M -> 68k on HC-2)")
		d, err := experiments.LoadDataset("sim-HC2", scale)
		if err != nil {
			return err
		}
		kmers, mid, contigs, err := experiments.VertexCollapse(d, workers)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "k-mer vertices: %d\nafter merging (ambiguous k-mers + contigs): %d\nfinal contigs: %d\n",
			kmers, mid, contigs)
	}
	switch exp {
	case "all", "table1", "fig12a", "fig12b", "table2", "table3", "table4", "table5", "n50growth", "vertexcollapse":
		return nil
	}
	return fmt.Errorf("unknown experiment %q", exp)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
