// Command benchfence compares a freshly emitted BENCH_pregel.json against
// the committed baseline and fails (exit 1) on regressions, in the spirit of
// benchstat but specialised to this repo's artifact schema.
//
//	go run ./cmd/benchfence -baseline BENCH_pregel.json -current BENCH_pregel.new.json -threshold 0.25
//
// Three classes of checks:
//
//   - Host-independent metrics are always compared: allocations per op,
//     checkpoint-codec sizes and the delta ratio, pipeline remote-message
//     fractions, and invariants that must hold on any machine (overlap
//     leaves traffic untouched, the binary codec beats gob, a fault-free
//     run restores nothing).
//   - Time-based metrics (ns/op, msgs/s) are compared only when baseline
//     and current were measured on a comparable host (same num_cpu and
//     go_max_procs); otherwise they are reported as skipped.
//   - The parallel-speedup gate binds only when BOTH artifacts carry
//     parallel_speedup_valid=true and the current GOMAXPROCS >= 4 — a
//     single-core runner cannot demonstrate parallel speedup, and its
//     ratio measures scheduler overhead, not the engine; comparing
//     against such a baseline would gate on noise.
//
// -threshold is the allowed fractional regression for ratio comparisons
// (0.25 = current may be up to 25% worse than baseline).
//
// A fourth mode, -calibrate, skips the comparison entirely: it reads the
// -current artifact's transport section and prints the CostModel parameters
// the measured wire implies (suggested BytesPerSecond from bytes-over-time,
// the mean per-frame wall time as an empirical latency floor) next to the
// defaults the simulation charges, so a drifted model is visible:
//
//	go run ./cmd/benchfence -calibrate -current BENCH_pregel.new.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"ppaassembler/internal/pregel"
)

// The structs below mirror the subset of the BENCH_pregel.json schema the
// fence reads (the emitter lives in bench_pregel_test.go at the repo root).
// Unknown fields are ignored, so the artifact can grow without breaking
// older fences.

type shuffleRow struct {
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	MsgsPerSec  float64 `json:"msgs_per_sec"`
	LocalMsgs   int64   `json:"local_msgs"`
	RemoteMsgs  int64   `json:"remote_msgs"`
}

type codecStats struct {
	FullBytes     int     `json:"full_bytes"`
	GobBytes      int     `json:"gob_bytes"`
	DeltaBytes    int     `json:"delta_bytes"`
	DeltaRatio    float64 `json:"delta_ratio"`
	EncodeSpeedup float64 `json:"encode_speedup"`
	DecodeSpeedup float64 `json:"decode_speedup"`
}

type pipelineRow struct {
	Name           string  `json:"name"`
	RemoteFraction float64 `json:"remote_fraction"`
	NetSimSeconds  float64 `json:"net_sim_seconds"`
}

type checkpointIO struct {
	Saves        int64 `json:"saves"`
	Restores     int64 `json:"restores"`
	BytesWritten int64 `json:"bytes_written"`
}

type transportRow struct {
	FramesSent            int64   `json:"frames_sent"`
	BytesSent             int64   `json:"bytes_sent"`
	BytesReceived         int64   `json:"bytes_received"`
	RemoteMessages        int64   `json:"remote_messages"`
	MeasuredWireSeconds   float64 `json:"measured_wire_seconds"`
	MeasuredOverPredicted float64 `json:"measured_over_predicted"`
}

type adaptiveRow struct {
	Name             string  `json:"name"`
	RemoteFraction   float64 `json:"remote_fraction"`
	NetSimSeconds    float64 `json:"net_sim_seconds"`
	Migrations       int64   `json:"migrations"`
	MigratedVertices int64   `json:"migrated_vertices"`
	MigrationBytes   int64   `json:"migration_bytes"`
}

type adaptiveSection struct {
	Every    int           `json:"every_supersteps"`
	MaxMoves int           `json:"max_moves"`
	Rows     []adaptiveRow `json:"rows"`
}

type artifact struct {
	NumCPU               int             `json:"num_cpu"`
	GoMaxProcs           int             `json:"go_max_procs"`
	Sequential           shuffleRow      `json:"sequential"`
	Parallel             shuffleRow      `json:"parallel"`
	ParallelOverlap      shuffleRow      `json:"parallel_overlap"`
	ParallelSpeedup      float64         `json:"parallel_speedup"`
	OverlapSpeedup       float64         `json:"overlap_speedup"`
	ParallelSpeedupValid bool            `json:"parallel_speedup_valid"`
	Pipeline             []pipelineRow   `json:"pipeline_partitioners"`
	Adaptive             adaptiveSection `json:"adaptive_partitioning"`
	CheckpointIO         checkpointIO    `json:"checkpoint_io"`
	CheckpointThroughput codecStats      `json:"checkpoint_throughput"`
	Transport            transportRow    `json:"transport"`
}

// report accumulates regressions (fail the fence) and notes (informational:
// skipped comparisons, measured ratios).
type report struct {
	regressions []string
	notes       []string
}

func (r *report) failf(format string, args ...any) {
	r.regressions = append(r.regressions, fmt.Sprintf(format, args...))
}

func (r *report) notef(format string, args ...any) {
	r.notes = append(r.notes, fmt.Sprintf(format, args...))
}

// checkGrowth flags current > baseline*(1+threshold) for a
// smaller-is-better metric. The degenerate ends never pass silently: a
// zero baseline cannot gate anything, so the comparison is recorded as
// skipped; a zero current for a metric the baseline has means the section
// was dropped or the emitter broke — a ratio check would read that as a
// perfect score, so it fails instead.
func checkGrowth(r *report, name string, baseline, current, threshold float64) {
	if baseline <= 0 {
		r.notef("skipped: %s has no baseline value (baseline %.4g, current %.4g)", name, baseline, current)
		return
	}
	if current <= 0 {
		r.failf("%s vanished from the current artifact (baseline %.4g, current %.4g) — section dropped or emitter broken",
			name, baseline, current)
		return
	}
	if w := current/baseline - 1; w > threshold {
		r.failf("%s regressed %.1f%% (baseline %.4g, current %.4g, threshold %.0f%%)",
			name, 100*w, baseline, current, 100*threshold)
	}
}

// compare runs every fence check and returns the verdict.
func compare(baseline, current artifact, threshold float64) report {
	var r report

	// --- Host-independent: allocation counts on the shuffle workload. ---
	for _, m := range []struct {
		name      string
		base, cur shuffleRow
	}{
		{"sequential", baseline.Sequential, current.Sequential},
		{"parallel", baseline.Parallel, current.Parallel},
		{"parallel_overlap", baseline.ParallelOverlap, current.ParallelOverlap},
	} {
		checkGrowth(&r, m.name+" allocs/op", float64(m.base.AllocsPerOp), float64(m.cur.AllocsPerOp), threshold)
		checkGrowth(&r, m.name+" bytes/op", float64(m.base.BytesPerOp), float64(m.cur.BytesPerOp), threshold)
	}

	// --- Host-independent invariant: overlap must not change traffic. ---
	if current.ParallelOverlap.LocalMsgs != current.Parallel.LocalMsgs ||
		current.ParallelOverlap.RemoteMsgs != current.Parallel.RemoteMsgs {
		r.failf("overlap changed shuffle traffic: overlapped %d/%d local/remote vs barriered %d/%d — determinism contract broken",
			current.ParallelOverlap.LocalMsgs, current.ParallelOverlap.RemoteMsgs,
			current.Parallel.LocalMsgs, current.Parallel.RemoteMsgs)
	}

	// --- Host-independent: checkpoint codec. Sizes are deterministic for
	// the fixed synthetic workload; the speedups are host-noisy but their
	// floor (beat gob at all) holds anywhere. ---
	ct, bt := current.CheckpointThroughput, baseline.CheckpointThroughput
	checkGrowth(&r, "checkpoint full_bytes", float64(bt.FullBytes), float64(ct.FullBytes), threshold)
	checkGrowth(&r, "checkpoint delta_ratio", bt.DeltaRatio, ct.DeltaRatio, threshold)
	if ct.EncodeSpeedup <= 1.0 {
		r.failf("binary checkpoint encode not faster than gob (%.2fx)", ct.EncodeSpeedup)
	}
	if ct.DecodeSpeedup <= 1.0 {
		r.failf("binary checkpoint decode not faster than gob (%.2fx)", ct.DecodeSpeedup)
	}
	if ct.FullBytes >= ct.GobBytes {
		r.failf("binary full snapshot (%d bytes) not smaller than gob (%d bytes)", ct.FullBytes, ct.GobBytes)
	}

	// --- Host-independent: checkpoint I/O of the fault-free pipeline. ---
	if current.CheckpointIO.Saves == 0 || current.CheckpointIO.BytesWritten == 0 {
		r.failf("checkpoint_io section empty: saves=%d bytes=%d",
			current.CheckpointIO.Saves, current.CheckpointIO.BytesWritten)
	}
	if current.CheckpointIO.Restores != 0 {
		r.failf("fault-free benchmark pipeline restored %d checkpoints", current.CheckpointIO.Restores)
	}

	// --- Host-independent: pipeline locality (remote fractions and the
	// communication-bound simulated makespan are deterministic). ---
	basePipe := map[string]pipelineRow{}
	for _, row := range baseline.Pipeline {
		basePipe[row.Name] = row
	}
	curPipe := map[string]bool{}
	for _, row := range current.Pipeline {
		curPipe[row.Name] = true
		b, ok := basePipe[row.Name]
		if !ok {
			r.notef("pipeline partitioner %q has no baseline row; skipping", row.Name)
			continue
		}
		checkGrowth(&r, "pipeline "+row.Name+" remote_fraction", b.RemoteFraction, row.RemoteFraction, threshold)
		checkGrowth(&r, "pipeline "+row.Name+" net_sim_seconds", b.NetSimSeconds, row.NetSimSeconds, threshold)
	}
	// A row the baseline gates on must not silently disappear — an emitter
	// that stops measuring a partitioner would otherwise weaken the fence.
	for _, row := range baseline.Pipeline {
		if !curPipe[row.Name] {
			r.failf("pipeline partitioner %q present in the baseline but missing from the current artifact", row.Name)
		}
	}

	// --- Host-independent: adaptive repartitioning. The rows are
	// deterministic (simulated clock, fixed workload), so two things are
	// gated: no row drifts past threshold against its baseline, and the
	// headline claim keeps holding in the current artifact on its own —
	// hash+adaptive must beat static minimizer on both remote fraction and
	// communication-bound makespan, with the migration toll on the clock. ---
	if len(baseline.Adaptive.Rows) > 0 && len(current.Adaptive.Rows) == 0 {
		r.failf("adaptive_partitioning section vanished from the current artifact (baseline had %d rows)",
			len(baseline.Adaptive.Rows))
	}
	baseAd := map[string]adaptiveRow{}
	for _, row := range baseline.Adaptive.Rows {
		baseAd[row.Name] = row
	}
	curAd := map[string]adaptiveRow{}
	for _, row := range current.Adaptive.Rows {
		curAd[row.Name] = row
		b, ok := baseAd[row.Name]
		if !ok {
			r.notef("adaptive row %q has no baseline row; skipping", row.Name)
			continue
		}
		checkGrowth(&r, "adaptive "+row.Name+" remote_fraction", b.RemoteFraction, row.RemoteFraction, threshold)
		checkGrowth(&r, "adaptive "+row.Name+" net_sim_seconds", b.NetSimSeconds, row.NetSimSeconds, threshold)
	}
	if adp, ok := curAd["adaptive(hash)"]; ok {
		if adp.Migrations == 0 || adp.MigratedVertices == 0 {
			r.failf("adaptive(hash) committed no migrations (decisions=%d vertices=%d) — the policy never fired",
				adp.Migrations, adp.MigratedVertices)
		}
		if stat, ok := curAd["minimizer"]; ok {
			if adp.RemoteFraction >= stat.RemoteFraction {
				r.failf("adaptive(hash) remote fraction %.4f does not beat static minimizer %.4f",
					adp.RemoteFraction, stat.RemoteFraction)
			}
			if adp.NetSimSeconds >= stat.NetSimSeconds {
				r.failf("adaptive(hash) net makespan %.5fs (migration toll included) does not beat static minimizer %.5fs",
					adp.NetSimSeconds, stat.NetSimSeconds)
			}
		}
	} else if len(current.Adaptive.Rows) > 0 {
		r.failf("adaptive_partitioning section has rows but no adaptive(hash) row")
	}

	// --- Time-based metrics: only on a comparable host. ---
	if baseline.NumCPU == current.NumCPU && baseline.GoMaxProcs == current.GoMaxProcs {
		for _, m := range []struct {
			name      string
			base, cur shuffleRow
		}{
			{"sequential", baseline.Sequential, current.Sequential},
			{"parallel", baseline.Parallel, current.Parallel},
			{"parallel_overlap", baseline.ParallelOverlap, current.ParallelOverlap},
		} {
			checkGrowth(&r, m.name+" ns/op", float64(m.base.NsPerOp), float64(m.cur.NsPerOp), threshold)
		}
	} else {
		r.notef("skipping ns/op comparison: baseline measured on %d CPU / GOMAXPROCS %d, current on %d / %d",
			baseline.NumCPU, baseline.GoMaxProcs, current.NumCPU, current.GoMaxProcs)
	}

	// --- Parallel speedup: binds only when the measurement means
	// something on BOTH sides (see parallel_speedup_valid in the artifact
	// schema). A baseline recorded on a 1-CPU host carries a meaningless
	// ratio (the committed artifact once held 0.92x from such a runner);
	// comparing against it — or gating a current artifact whose own flag is
	// false — would compare scheduler noise, so the gate is skipped and the
	// measured ratios are only reported. ---
	if baseline.ParallelSpeedupValid && current.ParallelSpeedupValid && current.GoMaxProcs >= 4 {
		if current.ParallelSpeedup <= 1.0 {
			r.failf("parallel shuffle not faster than sequential with GOMAXPROCS=%d (speedup %.2fx)",
				current.GoMaxProcs, current.ParallelSpeedup)
		}
		if current.OverlapSpeedup > 0 && current.OverlapSpeedup < 1-threshold {
			r.failf("overlapped delivery slower than the barriered path beyond threshold (%.2fx)", current.OverlapSpeedup)
		}
	} else {
		r.notef("skipping parallel-speedup gate: baseline valid=%v, current valid=%v, GOMAXPROCS=%d (need both valid and >= 4); measured %.2fx parallel, %.2fx overlap",
			baseline.ParallelSpeedupValid, current.ParallelSpeedupValid, current.GoMaxProcs,
			current.ParallelSpeedup, current.OverlapSpeedup)
	}

	// --- Transport: the wire volume of the fixed shuffle workload is
	// deterministic (lane codec + frame overhead), so byte growth is a
	// codec-bloat fence; wire *time* is a property of the host's loopback
	// stack and is only reported. ---
	tb, tc := baseline.Transport, current.Transport
	if tb.BytesSent > 0 && tc.BytesSent == 0 {
		r.failf("transport section vanished from the current artifact (baseline sent %d bytes)", tb.BytesSent)
	}
	checkGrowth(&r, "transport bytes_sent", float64(tb.BytesSent), float64(tc.BytesSent), threshold)
	checkGrowth(&r, "transport bytes_received", float64(tb.BytesReceived), float64(tc.BytesReceived), threshold)
	if tc.BytesSent > 0 && tc.RemoteMessages == 0 {
		r.failf("transport section sent %d bytes but recorded no remote messages", tc.BytesSent)
	}
	if tc.MeasuredWireSeconds > 0 {
		r.notef("transport wire time %.3fs measured, %.2fx the CostModel prediction (host-dependent, not gated)",
			tc.MeasuredWireSeconds, tc.MeasuredOverPredicted)
	}

	return r
}

func load(path string) (artifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return artifact{}, err
	}
	var a artifact
	if err := json.Unmarshal(data, &a); err != nil {
		return artifact{}, fmt.Errorf("%s: %w", path, err)
	}
	return a, nil
}

// calibrate prints the CostModel parameters the -current artifact's measured
// transport section implies, next to what the simulation charges by default.
// It is a reporting aid, not a fence: the measured wire is this host's
// loopback stack, so the output is advice for anyone tuning -cost flags, and
// a drift note when measured and modeled bandwidth diverge badly.
func calibrate(current artifact) error {
	t := current.Transport
	if t.MeasuredWireSeconds <= 0 || t.BytesSent == 0 {
		return fmt.Errorf("current artifact has no measured transport section (bytes_sent=%d, measured_wire_seconds=%g); re-emit with the transport benchmark enabled",
			t.BytesSent, t.MeasuredWireSeconds)
	}
	model := pregel.DefaultCost()
	wire := float64(t.BytesSent+t.BytesReceived) / t.MeasuredWireSeconds
	fmt.Printf("transport measured: %d bytes sent, %d received, %d frames in %.4fs\n",
		t.BytesSent, t.BytesReceived, t.FramesSent, t.MeasuredWireSeconds)
	fmt.Printf("suggested BytesPerSecond: %.0f (%.1f MiB/s); model default %.0f (%.1f MiB/s), measured/modeled %.2fx\n",
		wire, wire/(1<<20), model.BytesPerSecond, model.BytesPerSecond/(1<<20), wire/model.BytesPerSecond)
	if t.FramesSent > 0 {
		perFrame := t.MeasuredWireSeconds / float64(t.FramesSent)
		fmt.Printf("empirical per-frame wall time: %.1fµs/frame — a floor for SuperstepLatency; model default %s\n",
			perFrame*1e6, model.SuperstepLatency)
	}
	if t.MeasuredOverPredicted > 0 {
		fmt.Printf("measured_over_predicted (from emitter): %.2fx\n", t.MeasuredOverPredicted)
	}
	return nil
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_pregel.json", "committed benchmark artifact to compare against")
	currentPath := flag.String("current", "", "freshly emitted benchmark artifact (required)")
	threshold := flag.Float64("threshold", 0.25, "allowed fractional regression for ratio comparisons (0.25 = 25%)")
	calibrateMode := flag.Bool("calibrate", false, "report the CostModel parameters the -current artifact's measured transport implies, then exit (no baseline comparison)")
	flag.Parse()
	if *currentPath == "" {
		fmt.Fprintln(os.Stderr, "benchfence: -current is required")
		flag.Usage()
		os.Exit(2)
	}
	if *calibrateMode {
		current, err := load(*currentPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchfence: %v\n", err)
			os.Exit(2)
		}
		if err := calibrate(current); err != nil {
			fmt.Fprintf(os.Stderr, "benchfence: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *threshold <= 0 {
		fmt.Fprintln(os.Stderr, "benchfence: -threshold must be positive")
		os.Exit(2)
	}
	baseline, err := load(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchfence: %v\n", err)
		os.Exit(2)
	}
	current, err := load(*currentPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchfence: %v\n", err)
		os.Exit(2)
	}
	rep := compare(baseline, current, *threshold)
	for _, n := range rep.notes {
		fmt.Printf("note: %s\n", n)
	}
	if len(rep.regressions) == 0 {
		fmt.Printf("benchfence: OK — %s within %.0f%% of %s on all applicable metrics\n",
			*currentPath, 100**threshold, *baselinePath)
		return
	}
	for _, reg := range rep.regressions {
		fmt.Fprintf(os.Stderr, "REGRESSION: %s\n", reg)
	}
	fmt.Fprintf(os.Stderr, "benchfence: %d regression(s) against %s\n", len(rep.regressions), *baselinePath)
	os.Exit(1)
}
