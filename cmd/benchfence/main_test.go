package main

import (
	"strings"
	"testing"
)

// healthyArtifact is a baseline-shaped artifact with no regressions in it:
// codec beats gob, overlap traffic matches barriered, pipeline rows present.
func healthyArtifact() artifact {
	a := artifact{
		NumCPU:               4,
		GoMaxProcs:           4,
		ParallelSpeedup:      1.8,
		OverlapSpeedup:       1.1,
		ParallelSpeedupValid: true,
	}
	a.Sequential = shuffleRow{NsPerOp: 100_000, AllocsPerOp: 1000, BytesPerOp: 50_000, LocalMsgs: 240, RemoteMsgs: 720}
	a.Parallel = shuffleRow{NsPerOp: 55_000, AllocsPerOp: 1100, BytesPerOp: 52_000, LocalMsgs: 240, RemoteMsgs: 720}
	a.ParallelOverlap = shuffleRow{NsPerOp: 50_000, AllocsPerOp: 1150, BytesPerOp: 52_000, LocalMsgs: 240, RemoteMsgs: 720}
	a.CheckpointIO = checkpointIO{Saves: 19, Restores: 0, BytesWritten: 1 << 20}
	a.CheckpointThroughput = codecStats{
		FullBytes: 900_000, GobBytes: 1_200_000, DeltaBytes: 40_000,
		DeltaRatio: 0.04, EncodeSpeedup: 2.5, DecodeSpeedup: 1.2,
	}
	a.Pipeline = []pipelineRow{
		{Name: "hash", RemoteFraction: 0.74, NetSimSeconds: 2.0},
		{Name: "minimizer", RemoteFraction: 0.40, NetSimSeconds: 1.2},
	}
	a.Transport = transportRow{
		FramesSent: 120, BytesSent: 4 << 20, BytesReceived: 4 << 20,
		RemoteMessages: 720, MeasuredWireSeconds: 0.05, MeasuredOverPredicted: 0.7,
	}
	return a
}

func wantClean(t *testing.T, r report) {
	t.Helper()
	if len(r.regressions) != 0 {
		t.Fatalf("expected clean fence, got regressions: %v", r.regressions)
	}
}

func wantRegression(t *testing.T, r report, substr string) {
	t.Helper()
	for _, reg := range r.regressions {
		if strings.Contains(reg, substr) {
			return
		}
	}
	t.Fatalf("expected a regression mentioning %q, got: %v", substr, r.regressions)
}

func wantNote(t *testing.T, r report, substr string) {
	t.Helper()
	for _, n := range r.notes {
		if strings.Contains(n, substr) {
			return
		}
	}
	t.Fatalf("expected a note mentioning %q, got: %v", substr, r.notes)
}

func TestIdenticalArtifactsPass(t *testing.T) {
	a := healthyArtifact()
	wantClean(t, compare(a, a, 0.25))
}

func TestSmallDriftWithinThresholdPasses(t *testing.T) {
	base := healthyArtifact()
	cur := healthyArtifact()
	cur.Sequential.NsPerOp = base.Sequential.NsPerOp * 110 / 100 // +10% < 25%
	cur.Sequential.AllocsPerOp = base.Sequential.AllocsPerOp * 105 / 100
	wantClean(t, compare(base, cur, 0.25))
}

func TestAllocRegressionCaughtRegardlessOfHost(t *testing.T) {
	base := healthyArtifact()
	cur := healthyArtifact()
	cur.NumCPU, cur.GoMaxProcs = 1, 1 // different host: time comparisons skipped...
	cur.ParallelSpeedupValid = false
	cur.Parallel.AllocsPerOp = base.Parallel.AllocsPerOp * 2 // ...but allocs are not
	r := compare(base, cur, 0.25)
	wantRegression(t, r, "parallel allocs/op")
	wantNote(t, r, "skipping ns/op comparison")
}

func TestNsPerOpComparedOnlyOnMatchingHost(t *testing.T) {
	base := healthyArtifact()
	cur := healthyArtifact()
	cur.Sequential.NsPerOp = base.Sequential.NsPerOp * 3 // way past threshold
	wantRegression(t, compare(base, cur, 0.25), "sequential ns/op")

	cur.GoMaxProcs = 8 // now hosts differ: same 3x slowdown must be skipped, not failed
	cur.ParallelSpeedup = 2.5
	r := compare(base, cur, 0.25)
	for _, reg := range r.regressions {
		if strings.Contains(reg, "ns/op") {
			t.Fatalf("ns/op compared across mismatched hosts: %v", r.regressions)
		}
	}
	wantNote(t, r, "skipping ns/op comparison")
}

func TestOverlapTrafficDivergenceFails(t *testing.T) {
	base := healthyArtifact()
	cur := healthyArtifact()
	cur.ParallelOverlap.RemoteMsgs++ // overlap must never change traffic
	wantRegression(t, compare(base, cur, 0.25), "determinism contract")
}

func TestCodecMustBeatGobAnywhere(t *testing.T) {
	base := healthyArtifact()
	cur := healthyArtifact()
	cur.NumCPU, cur.GoMaxProcs = 1, 1 // even on a mismatched host
	cur.ParallelSpeedupValid = false
	cur.CheckpointThroughput.EncodeSpeedup = 0.9
	wantRegression(t, compare(base, cur, 0.25), "encode not faster than gob")
}

func TestDeltaRatioGrowthFails(t *testing.T) {
	base := healthyArtifact()
	cur := healthyArtifact()
	cur.CheckpointThroughput.DeltaRatio = base.CheckpointThroughput.DeltaRatio * 2
	wantRegression(t, compare(base, cur, 0.25), "delta_ratio")
}

func TestPipelineLocalityRegressionFails(t *testing.T) {
	base := healthyArtifact()
	cur := healthyArtifact()
	cur.Pipeline[1].RemoteFraction = 0.70 // minimizer locality collapses toward hash
	wantRegression(t, compare(base, cur, 0.25), "minimizer remote_fraction")
}

func TestParallelSpeedupGateBindsOnlyWhenValid(t *testing.T) {
	base := healthyArtifact()

	cur := healthyArtifact()
	cur.ParallelSpeedup = 0.8 // valid 4-core host claiming a slowdown: fail
	wantRegression(t, compare(base, cur, 0.25), "not faster than sequential")

	cur = healthyArtifact()
	cur.NumCPU, cur.GoMaxProcs = 1, 1
	cur.ParallelSpeedupValid = false
	cur.ParallelSpeedup = 0.8 // single-core ratio is noise: note, not failure
	r := compare(base, cur, 0.25)
	for _, reg := range r.regressions {
		if strings.Contains(reg, "not faster than sequential") {
			t.Fatalf("speedup gate bound on an invalid measurement: %v", r.regressions)
		}
	}
	wantNote(t, r, "skipping parallel-speedup gate")
}

func TestParallelSpeedupGateSkippedOnInvalidBaseline(t *testing.T) {
	// The committed baseline was once recorded on a 1-CPU bench host with a
	// meaningless 0.92x ratio; a perfectly healthy current artifact must not
	// be gated against that noise.
	base := healthyArtifact()
	base.NumCPU, base.GoMaxProcs = 1, 1
	base.ParallelSpeedupValid = false
	base.ParallelSpeedup = 0.92
	cur := healthyArtifact()
	cur.ParallelSpeedup = 0.8 // would fail the gate if it bound
	r := compare(base, cur, 0.25)
	for _, reg := range r.regressions {
		if strings.Contains(reg, "not faster than sequential") {
			t.Fatalf("speedup gate bound against an invalid baseline: %v", r.regressions)
		}
	}
	wantNote(t, r, "skipping parallel-speedup gate")
	wantNote(t, r, "baseline valid=false")
}

func TestTransportSectionDroppedFails(t *testing.T) {
	base := healthyArtifact()
	cur := healthyArtifact()
	cur.Transport = transportRow{}
	wantRegression(t, compare(base, cur, 0.25), "transport section vanished")
}

func TestTransportByteGrowthFails(t *testing.T) {
	base := healthyArtifact()
	cur := healthyArtifact()
	cur.Transport.BytesSent = base.Transport.BytesSent * 2 // frame/lane codec bloat
	wantRegression(t, compare(base, cur, 0.25), "transport bytes_sent")
}

func TestFaultFreeRestoreFails(t *testing.T) {
	base := healthyArtifact()
	cur := healthyArtifact()
	cur.CheckpointIO.Restores = 2
	wantRegression(t, compare(base, cur, 0.25), "restored")
}

func TestMissingBaselinePipelineRowIsNoted(t *testing.T) {
	base := healthyArtifact()
	base.Pipeline = base.Pipeline[:1] // baseline predates the minimizer row
	cur := healthyArtifact()
	r := compare(base, cur, 0.25)
	wantClean(t, r)
	wantNote(t, r, "no baseline row")
}

func TestZeroBaselineMetricIsNotedNotSilentlyPassed(t *testing.T) {
	base := healthyArtifact()
	base.CheckpointThroughput.DeltaRatio = 0 // baseline predates this metric
	cur := healthyArtifact()
	cur.CheckpointThroughput.DeltaRatio = 100 // would regress if gated
	r := compare(base, cur, 0.25)
	wantClean(t, r)
	wantNote(t, r, "skipped: checkpoint delta_ratio")
}

func TestDroppedMetricFailsInsteadOfReadingAsImprovement(t *testing.T) {
	base := healthyArtifact()
	cur := healthyArtifact()
	cur.Sequential.AllocsPerOp = 0 // emitter stopped measuring: not a perfect score
	wantRegression(t, compare(base, cur, 0.25), "sequential allocs/op vanished")
}

func TestDroppedPipelineRowFails(t *testing.T) {
	base := healthyArtifact()
	cur := healthyArtifact()
	cur.Pipeline = cur.Pipeline[:1] // current stopped measuring the minimizer leg
	wantRegression(t, compare(base, cur, 0.25), `"minimizer" present in the baseline but missing`)
}
